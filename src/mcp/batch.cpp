#include "mcp/batch.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <vector>

#include "mcp/relax_core.hpp"
#include "mcp/tiled.hpp"
#include "mcp/verify.hpp"
#include "obs/collector.hpp"
#include "ppc/primitives.hpp"
#include "util/check.hpp"

namespace ppa::mcp {

namespace {

using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Word;

/// True when the outcome warrants another attempt on the oracle (the same
/// policy as solve_with_recovery).
bool retriable(SolveOutcome outcome) {
  return outcome == SolveOutcome::VerificationFailed ||
         outcome == SolveOutcome::NonConverged || outcome == SolveOutcome::HardwareFault;
}

/// One batch member's host-side state: the controller keeps the row-d
/// vectors between panel visits, exactly like the tiled driver, one set
/// per destination in flight.
struct Member {
  graph::Vertex destination = 0;
  std::vector<Word> sow;            // current row-d costs (n)
  std::vector<graph::Vertex> ptn;   // current next hops (n)
  std::vector<Word> next_min;       // Jacobi buffer for the sweep (n)
  std::vector<Word> next_arg;
  std::vector<Word> carry_min;      // per-row-block panel carry (p)
  std::vector<Word> carry_arg;
  std::vector<IterationRecord> trace;
  std::size_t iterations = 0;
  bool converged = false;
  // Active-panel schedule, per member (docs/tiling.md "Active panels"):
  // each destination's change pattern is its own, so each member carries
  // its own dirty flags and cached per-(bi,bj) readbacks.
  detail::DirtyBlocks dirty{0};
  std::vector<Word> cache_min;
  std::vector<Word> cache_arg;
};

/// One shared sweep pass over `members.size()` destinations. The sweep
/// schedule is the tiled driver's generalized to k destinations: the
/// weight panel is loaded once per panel visit and every still-active
/// member rides it with its own SOW fragment. The row reduction is a
/// FUSED bit-serial min/argmin: h + ceil(log2(blocks * p)) wired-OR
/// elimination rounds MSB-first over the candidate value bits and then
/// the global column-index bits, with the controller reconstructing both
/// results from the per-row OR lines (an OR round that finds a 0 pins
/// that bit of the minimum to 0 and narrows the candidate set). One
/// survivor per row remains — the minimum with the smallest global index
/// — matching panel_row_reduce's tie-break bit for bit while skipping its
/// routing/spread broadcasts and the per-destination GlobalOr loop test
/// (convergence is host-side). See docs/batching.md.
std::vector<Result> run_batched(sim::Machine& machine, const graph::WeightMatrix& graph,
                                const std::vector<graph::Vertex>& destinations,
                                const Options& options) {
  const std::size_t n = graph.size();
  const std::size_t p = machine.n();
  const std::size_t b = destinations.size();
  PPA_REQUIRE(p >= 1 && p <= n, "physical array side must be in [1, vertex count]");
  PPA_REQUIRE(machine.field() == graph.field(),
              "machine and graph must use the same h-bit field");
  PPA_REQUIRE(machine.field().representable(n - 1),
              "vertex indices must be representable in the h-bit field");
  for (const graph::Vertex d : destinations) {
    PPA_REQUIRE(d < n, "destination out of range");
  }

  const std::size_t blocks = (n + p - 1) / p;  // ceil(n/p) panels per axis
  const Word inf = machine.field().infinity();
  const std::size_t iteration_cap =
      options.max_iterations != 0 ? options.max_iterations : n + 2;
  const int h = static_cast<int>(machine.field().bits());
  // Index elimination rounds: enough bits for the largest global column
  // index any panel carries (padding columns of the last block included —
  // they hold infinity candidates and lose every value round unless the
  // whole row is at infinity, where the smallest index still wins).
  const int idx_bits = static_cast<int>(std::bit_width(blocks * p - 1));

  obs::Collector* const observer = options.observer;
  detail::ScopedSink scoped_sink(machine, observer);
  PPA_SPAN(observer, "solve_batch", &machine, static_cast<std::int64_t>(b));

  ppc::Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();
  const std::size_t faults_at_entry = machine.fault_count();
  const sim::Machine::PlanCacheStats plans_at_entry = machine.plan_cache_stats();
  const sim::MaskingStats masking_at_entry = machine.masking_stats();
  const detail::ThroughputProbe throughput_at_entry =
      observer != nullptr ? detail::probe_throughput(machine) : detail::ThroughputProbe{};

  if (observer != nullptr) {
    observer->metrics().counter(obs::metric::kSolverBatches).add(1);
    observer->metrics().counter(obs::metric::kSolverBatchWidth).add(b);
  }

  // ------------------------------------------------------------------
  // Initialization: one host row-d state per member (the tiled init, k
  // times) plus the shared physical constants and host panel views.
  // ------------------------------------------------------------------
  auto init_span = std::make_optional(obs::open_span(observer, "init", &machine));
  const bool active_schedule = options.active_panels;
  std::vector<Member> members(b);
  for (std::size_t mi = 0; mi < b; ++mi) {
    Member& m = members[mi];
    m.destination = destinations[mi];
    m.sow.resize(n);
    m.ptn.assign(n, m.destination);
    m.next_min.resize(n);
    m.next_arg.resize(n);
    m.carry_min.resize(p);
    m.carry_arg.resize(p);
    for (std::size_t i = 0; i < n; ++i) {
      m.sow[i] = (i == m.destination) ? 0 : graph.at(i, m.destination);
    }
    if (active_schedule) {
      m.dirty = detail::DirtyBlocks(blocks);
      m.cache_min.resize(blocks * blocks * p);
      m.cache_arg.resize(blocks * blocks * p);
    }
  }

  // The carrier of every SOW fragment is machine row 0, like the tiled
  // sweep; all members share the switch configurations, so the broadcast
  // plan cache serves every cycle after the first from memory.
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Pbool carrier = (ROW == Word{0});
  const Pbool not_carrier = !carrier;
  const Pbool row_end = (COL == static_cast<Word>(p - 1));

  std::vector<std::vector<Word>> panels(blocks * blocks);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    for (std::size_t bj = 0; bj < blocks; ++bj) {
      panels[bi * blocks + bj] = detail::panel_weights(graph, p, bi * p, bj * p);
    }
  }

  // Global column-index bit planes per column block, MSB-first: PE (r, c)
  // of block bj holds bit j of bj*p + c. Host flags (no field arithmetic,
  // so padding indices never clamp), built once per batch and reused by
  // every member, panel visit and sweep.
  std::vector<std::vector<Pbool>> index_bits(blocks);
  {
    std::vector<sim::Flag> flags(p * p);
    for (std::size_t bj = 0; bj < blocks; ++bj) {
      for (int j = idx_bits - 1; j >= 0; --j) {
        for (std::size_t r = 0; r < p; ++r) {
          for (std::size_t c = 0; c < p; ++c) {
            flags[r * p + c] =
                static_cast<sim::Flag>(((bj * p + c) >> static_cast<std::size_t>(j)) & 1u);
          }
        }
        index_bits[bj].emplace_back(ctx, flags);
      }
    }
  }

  const sim::StepCounter after_init = machine.steps();
  init_span.reset();

  // ------------------------------------------------------------------
  // Relaxation sweeps. Panel-visit cost splits into a shared part (the W
  // panel load, p PanelIo) and a per-active-member part (1 fragment load
  // + 2 result-column readbacks): the dense schedule's PanelIo totals
  // S * blocks^2 * p + 3 * blocks^2 * sum_m I_m, with S = max iterations
  // over the batch — the amortization tests/mcp_batch_test.cpp pins with
  // Options::active_panels off. The active schedule (docs/tiling.md
  // "Active panels") makes the formula an upper bound: a member whose
  // column block is clean replays its cached readback (saving its 3
  // beats), a panel NO live member needs skips the shared W load (saving
  // p), and visited W loads double-buffer against the previous panel's
  // relax phase; charged PanelIo + saved equals the formula exactly. A
  // member freezes the sweep after its row first comes back unchanged;
  // the pass runs until every member has frozen or the cap trips.
  // ------------------------------------------------------------------
  auto relax_span = std::make_optional(obs::open_span(observer, "relax", &machine));
  std::vector<Word> sow_cells(p * p, Word{0});
  std::vector<Word> minv(p), argv(p);
  std::uint64_t panels_visited = 0;
  detail::PanelIoLedger ledger(machine, active_schedule);
  std::vector<std::uint8_t> need(blocks, 1);
  std::uint64_t panels_skipped = 0;
  std::uint64_t active_blocks_total = 0;
  std::size_t sweeps = 0;
  std::size_t active = b;
  while (active > 0) {
    if (sweeps >= iteration_cap) {
      // Same diagnosis as the per-destination engines: the DP is
      // monotone, so an exhausted cap means corrupted state. Every
      // still-active member reports its own event.
      for (const Member& m : members) {
        if (m.converged) continue;
        machine.report_fault(sim::FaultEvent{sim::FaultEventKind::NonConvergence,
                                             sim::StepCategory::Alu, Direction::North,
                                             m.destination, m.destination, m.iterations});
      }
      break;
    }
    const sim::StepCounter before_iteration = machine.steps();
    PPA_SPAN(observer, "relax_iter", &machine, static_cast<std::int64_t>(sweeps));

    ledger.begin_sweep();
    if (active_schedule) {
      // A column block is needed this sweep when ANY live member's slice
      // of it changed last iteration; blocks nobody needs skip the shared
      // W load outright. Computed once per sweep — convergence flags only
      // move in the apply phase below.
      std::size_t needed = 0;
      for (std::size_t bj = 0; bj < blocks; ++bj) {
        std::uint8_t flag = 0;
        for (const Member& m : members) {
          if (!m.converged && m.dirty.dirty(bj)) {
            flag = 1;
            break;
          }
        }
        need[bj] = flag;
        needed += flag;
      }
      active_blocks_total += needed;
    }
    for (std::size_t bi = 0; bi < blocks; ++bi) {
      const std::size_t base_r = bi * p;
      const std::size_t bh = std::min(p, n - base_r);
      for (Member& m : members) {
        if (m.converged) continue;
        std::fill(m.carry_min.begin(), m.carry_min.end(), inf);
        std::fill(m.carry_arg.begin(), m.carry_arg.end(), Word{0});
      }
      for (std::size_t bj = 0; bj < blocks; ++bj) {
        const std::size_t base_c = bj * p;
        const auto panel_id = static_cast<std::int64_t>(bi * blocks + bj);

        if (active_schedule && !need[bj]) {
          // ---- skipped shared visit: every live member's bj block is
          //      clean, so each replays its cached readback.
          ++panels_skipped;
          ledger.skip(static_cast<std::uint64_t>(p));
          for (Member& m : members) {
            if (m.converged) continue;
            ledger.skip(3);
            const Word* const cm = &m.cache_min[(bi * blocks + bj) * p];
            const Word* const ca = &m.cache_arg[(bi * blocks + bj) * p];
            for (std::size_t r = 0; r < bh; ++r) {
              if (cm[r] < m.carry_min[r]) {
                m.carry_min[r] = cm[r];
                m.carry_arg[r] = ca[r];
              }
            }
          }
          continue;
        }
        ++panels_visited;

        // ---- shared panel load: the W panel rides ONE PanelIo charge
        //      for the whole batch, double-buffered against the previous
        //      visited panel's relax phase under the active schedule.
        auto load_span =
            std::make_optional(obs::open_span(observer, "panel_load", &machine, panel_id));
        const Pint Wp(ctx, panels[bi * blocks + bj]);
        ledger.load(static_cast<std::uint64_t>(p));
        load_span.reset();

        PPA_SPAN(observer, "panel_relax", &machine, panel_id);
        ledger.relax_begin();
        for (Member& m : members) {
          if (m.converged) continue;
          if (active_schedule && !m.dirty.dirty(bj)) {
            // ---- member replay: this member's bj block is clean; its
            //      cached partial is exact, so the fragment and compute
            //      are skipped and the fold order stays identical.
            ledger.skip(3);
            const Word* const cm = &m.cache_min[(bi * blocks + bj) * p];
            const Word* const ca = &m.cache_arg[(bi * blocks + bj) * p];
            for (std::size_t r = 0; r < bh; ++r) {
              if (cm[r] < m.carry_min[r]) {
                m.carry_min[r] = cm[r];
                m.carry_arg[r] = ca[r];
              }
            }
            continue;
          }
          // ---- member fragment: 1 PanelIo row.
          for (std::size_t c = 0; c < p; ++c) {
            const std::size_t gj = base_c + c;
            sow_cells[c] = gj < n ? m.sow[gj] : inf;
          }
          Pint SOWP(ctx, sow_cells);
          machine.charge_panel_io(1);

          // ---- candidates: the shared relax core, per member.
          ppc::where(ctx, not_carrier, [&] {
            detail::panel_candidates(Wp, carrier, options.broadcast_scheme, SOWP);
          });
          ppc::where(ctx, carrier, [&] { SOWP = SOWP + Wp; });

          // ---- fused min/argmin elimination with host readback. The
          // controller reads each round's per-row OR line off column 0
          // (the row cluster spans the whole row, so any column works):
          // a round with no surviving 0 pins that result bit to 1.
          std::fill(minv.begin(), minv.begin() + static_cast<std::ptrdiff_t>(bh), Word{0});
          std::fill(argv.begin(), argv.begin() + static_cast<std::ptrdiff_t>(bh), Word{0});
          Pbool enable(ctx, true);
          for (int j = h - 1; j >= 0; --j) {
            const Pbool probe = enable & !SOWP.bit(j);
            const Pbool some = ppc::bus_or(probe, Direction::West, row_end);
            for (std::size_t r = 0; r < bh; ++r) {
              if (!some.at(r, 0)) minv[r] |= Word{1} << j;
            }
            ppc::where(ctx, some, [&] { enable = probe; });
          }
          for (int j = idx_bits - 1; j >= 0; --j) {
            const Pbool probe = enable & !index_bits[bj][static_cast<std::size_t>(
                                             idx_bits - 1 - j)];
            const Pbool some = ppc::bus_or(probe, Direction::West, row_end);
            for (std::size_t r = 0; r < bh; ++r) {
              if (!some.at(r, 0)) argv[r] |= Word{1} << j;
            }
            ppc::where(ctx, some, [&] { enable = probe; });
          }
          // ---- member readback: min + argmin columns, 2 PanelIo rows.
          machine.charge_panel_io(2);
          if (active_schedule) {
            std::copy(minv.begin(), minv.begin() + static_cast<std::ptrdiff_t>(bh),
                      m.cache_min.begin() + static_cast<std::ptrdiff_t>((bi * blocks + bj) * p));
            std::copy(argv.begin(), argv.begin() + static_cast<std::ptrdiff_t>(bh),
                      m.cache_arg.begin() + static_cast<std::ptrdiff_t>((bi * blocks + bj) * p));
          }
          for (std::size_t r = 0; r < bh; ++r) {
            if (minv[r] < m.carry_min[r]) {
              m.carry_min[r] = minv[r];
              m.carry_arg[r] = argv[r];
            }
          }
        }
        ledger.relax_end();
      }
      for (Member& m : members) {
        if (m.converged) continue;
        for (std::size_t r = 0; r < bh; ++r) {
          m.next_min[base_r + r] = m.carry_min[r];
          m.next_arg[base_r + r] = m.carry_arg[r];
        }
      }
    }

    // Apply the buffered row-d updates (Jacobi order, like the array);
    // each member's convergence test is its own.
    for (Member& m : members) {
      if (m.converged) continue;
      std::size_t changed = 0;
      // Per-row-block change counts, like the tiled driver: each member's
      // sparsity signal is its own (vertex i lives in block i/p).
      std::vector<std::uint64_t> panel_changes(
          observer != nullptr || active_schedule ? blocks : 0, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (i == m.destination) continue;  // pinned at 0
        if (m.next_min[i] != m.sow[i]) {
          m.sow[i] = m.next_min[i];
          m.ptn[i] = static_cast<graph::Vertex>(m.next_arg[i]);
          ++changed;
          if (!panel_changes.empty()) ++panel_changes[i / p];
        }
      }
      if (active_schedule) m.dirty.update(panel_changes);
      ++m.iterations;
      if (options.record_iterations) {
        m.trace.push_back(IterationRecord{changed, machine.steps().since(before_iteration)});
      }
      if (observer != nullptr) {
        observer->record_iteration(static_cast<std::int64_t>(m.destination),
                                   m.iterations, changed, std::move(panel_changes));
      }
      if (changed == 0) {
        m.converged = true;
        --active;
      }
    }
    ++sweeps;
  }
  relax_span.reset();

  // ------------------------------------------------------------------
  // Finalization. The machine's checked-execution delta is harvested
  // ONCE — the events are genuinely shared by every member that rode the
  // pass — then each member settles its own outcome with the same
  // precedence as detail::finalize_result (non-convergence, certificate,
  // machine diagnostics). NonConvergence diagnoses carry the destination
  // in their coordinates and stay with their own member.
  // ------------------------------------------------------------------
  const sim::StepCounter total = machine.steps().since(at_entry);
  const sim::StepCounter init_delta = after_init.since(at_entry);
  const std::vector<sim::FaultEvent>& log = machine.fault_events();
  std::vector<sim::FaultEvent> shared_events(log.begin() + static_cast<std::ptrdiff_t>(
                                                 faults_at_entry),
                                             log.end());
  const bool machine_faulted = machine.fault_count() > faults_at_entry;
  // Masking counters, like steps, are genuinely shared by the whole group:
  // each member Result carries the group delta, the observer counts the
  // group ONCE (all_pairs merges per-group collectors, not per-member).
  const sim::MaskingStats masking_delta = machine.masking_stats().since(masking_at_entry);

  if (observer != nullptr) {
    observer->metrics().counter(obs::metric::kSolverPanels).add(panels_visited);
    if (active_schedule) {
      obs::MetricsRegistry& metrics = observer->metrics();
      metrics.counter(obs::metric::kSolverPanelsSkipped).add(panels_skipped);
      metrics.counter(obs::metric::kSolverActiveBlocks).add(active_blocks_total);
      metrics.counter(obs::metric::kSolverPanelIoSaved).add(ledger.saved());
    }
    if (masking_delta.votes != 0) {
      obs::MetricsRegistry& metrics = observer->metrics();
      metrics.counter(obs::metric::kMaskVotes).add(masking_delta.votes);
      metrics.counter(obs::metric::kMaskCorrections).add(masking_delta.corrections);
      metrics.counter(obs::metric::kMaskUncorrectable).add(masking_delta.uncorrectable);
    }
  }
  detail::record_plan_cache_delta(machine, plans_at_entry, observer);
  detail::record_throughput_delta(machine, throughput_at_entry, observer);

  std::vector<Result> results;
  results.reserve(b);
  for (Member& m : members) {
    Result result;
    result.solution.destination = m.destination;
    result.solution.cost = std::move(m.sow);
    result.solution.next = std::move(m.ptn);
    result.iterations = m.iterations;
    result.iteration_trace = std::move(m.trace);
    // Steps are shared by construction: every member reports the whole
    // group's delta (docs/batching.md; all_pairs counts each group once).
    result.init_steps = init_delta;
    result.total_steps = total;
    result.masking = masking_delta;
    for (const sim::FaultEvent& event : shared_events) {
      if (event.kind == sim::FaultEventKind::NonConvergence &&
          event.row != m.destination) {
        continue;
      }
      result.fault_events.push_back(event);
    }
    if (!m.converged) result.outcome = SolveOutcome::NonConverged;

    if (result.outcome != SolveOutcome::NonConverged) {
      if (options.verify) {
        PPA_SPAN(observer, "verify", &machine);
        const CertificateReport report = check_certificate(graph, result.solution);
        if (report.ok) {
          result.outcome = SolveOutcome::Verified;
        } else {
          result.outcome = SolveOutcome::VerificationFailed;
          result.verify_detail = report.detail;
          const sim::FaultEvent event{sim::FaultEventKind::VerificationFailed,
                                      sim::StepCategory::Alu, Direction::North,
                                      m.destination, m.destination, 1};
          machine.report_fault(event);
          result.fault_events.push_back(event);
        }
      } else if (machine_faulted) {
        result.outcome = SolveOutcome::HardwareFault;
      } else if (masking_delta.uncorrectable > 0) {
        result.outcome = SolveOutcome::HardwareFault;
      } else if (masking_delta.corrections > 0) {
        result.outcome = SolveOutcome::MaskedFaults;
      }
    }

    if (observer != nullptr) {
      obs::MetricsRegistry& metrics = observer->metrics();
      metrics.counter(obs::metric::kSolverRuns).add(1);
      metrics.counter(obs::metric::kSolverIterations).add(result.iterations);
      metrics.counter(std::string(obs::metric::kOutcomePrefix) + name_of(result.outcome))
          .add(1);
    }
    results.push_back(std::move(result));
  }
  return results;
}

/// One batched attempt on `machine`; converts a ContractError on a faulty
/// machine into per-member HardwareFault results (the batched twin of
/// mcp.cpp's attempt() — a fault can drive the shared pass into states the
/// machine contracts reject, and every member that rode the pass degrades
/// together before retrying alone).
std::vector<Result> batched_attempt(sim::Machine& machine, const graph::WeightMatrix& graph,
                                    const std::vector<graph::Vertex>& destinations,
                                    const Options& options) {
  const std::size_t faults_at_entry = machine.fault_count();
  try {
    return run_batched(machine, graph, destinations, options);
  } catch (const util::ContractError&) {
    if (!machine.has_faults()) throw;
    std::vector<sim::FaultEvent> events;
    const std::vector<sim::FaultEvent>& log = machine.fault_events();
    for (std::size_t i = faults_at_entry; i < log.size(); ++i) {
      events.push_back(log[i]);
    }
    if (events.empty()) {
      events.push_back(sim::FaultEvent{sim::FaultEventKind::UndrivenRead,
                                       sim::StepCategory::Alu, Direction::North, 0, 0, 1});
    }
    std::vector<Result> results;
    results.reserve(destinations.size());
    for (const graph::Vertex d : destinations) {
      Result result;
      result.outcome = SolveOutcome::HardwareFault;
      result.solution.destination = d;
      result.solution.cost.assign(graph.size(), graph.infinity());
      result.solution.next.assign(graph.size(), d);
      result.fault_events = events;
      results.push_back(std::move(result));
    }
    return results;
  }
}

}  // namespace

std::vector<Result> solve_batch_on(sim::Machine& machine,
                                   std::unique_ptr<sim::Machine>& oracle,
                                   const graph::WeightMatrix& graph,
                                   const std::vector<graph::Vertex>& destinations,
                                   const Options& options) {
  std::vector<Result> out;
  out.reserve(destinations.size());
  const std::size_t width = options.batch_width;

  for (std::size_t start = 0; start < destinations.size();) {
    const std::size_t stop =
        width <= 1 ? start + 1 : std::min(start + width, destinations.size());
    if (stop - start == 1) {
      // Degenerate group: the per-destination engine IS the batch.
      out.push_back(solve_with_recovery(machine, oracle, graph, destinations[start],
                                        options));
      start = stop;
      continue;
    }
    const std::vector<graph::Vertex> group(destinations.begin() +
                                               static_cast<std::ptrdiff_t>(start),
                                           destinations.begin() +
                                               static_cast<std::ptrdiff_t>(stop));
    std::vector<Result> group_results = batched_attempt(machine, graph, group, options);

    // Per-member recovery: a failed member retries ALONE on the shared
    // fault-free word-backend oracle — the rest of the batch keeps its
    // first-pass rows untouched. Same geometry and bookkeeping as
    // solve_with_recovery.
    for (std::size_t gi = 0; gi < group_results.size(); ++gi) {
      Result result = std::move(group_results[gi]);
      const graph::Vertex d = group[gi];
      std::vector<sim::FaultEvent> events = std::move(result.fault_events);
      sim::StepCounter spent = result.total_steps;
      sim::MaskingStats masked = result.masking;
      std::size_t attempts = 1;
      while (retry_allowed(options.recovery) && retriable(result.outcome) &&
             attempts <= options.max_retries) {
        if (!oracle) {
          sim::MachineConfig config;
          config.n = machine.config().n;
          config.bits = graph.field().bits();
          config.topology = machine.config().topology;
          config.backend = sim::ExecBackend::Words;  // the fault-free oracle
          oracle = std::make_unique<sim::Machine>(config);
        }
        if (options.observer != nullptr) {
          options.observer->metrics().counter(obs::metric::kSolverRetries).add(1);
        }
        PPA_SPAN(options.observer, "retry", oracle.get(),
                 static_cast<std::int64_t>(attempts));
        result = run_minimum_cost_path(*oracle, graph, d, options);
        ++attempts;
        events.insert(events.end(), result.fault_events.begin(),
                      result.fault_events.end());
        spent.merge(result.total_steps);
        masked.merge(result.masking);
      }
      if (attempts > 1 && result.outcome == SolveOutcome::Verified &&
          options.observer != nullptr) {
        options.observer->metrics().counter(obs::metric::kSolverRecoveredRows).add(1);
      }
      result.fault_events = std::move(events);
      result.total_steps = spent;
      result.attempts = attempts;
      result.masking = masked;
      out.push_back(std::move(result));
    }
    start = stop;
  }
  return out;
}

std::vector<Result> solve_batch(const graph::WeightMatrix& graph,
                                const std::vector<graph::Vertex>& destinations,
                                const Options& options) {
  if (destinations.empty()) return {};
  sim::MachineConfig config;
  config.n = effective_array_side(options, graph.size());
  config.bits = graph.field().bits();
  config.backend = options.backend;
  config.checked = options.checked || !options.faults.empty();
  config.masking = masking_of(options.recovery);
  sim::Machine machine(config);
  if (!options.faults.empty()) machine.inject_faults(options.faults);
  std::unique_ptr<sim::Machine> oracle;
  return solve_batch_on(machine, oracle, graph, destinations, options);
}

}  // namespace ppa::mcp
