#include "mcp/tiled.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "mcp/relax_core.hpp"
#include "obs/collector.hpp"
#include "ppc/primitives.hpp"
#include "util/check.hpp"

namespace ppa::mcp {

namespace {

using ppc::Pbool;
using ppc::Pint;
using sim::Word;

}  // namespace

std::size_t effective_array_side(const Options& options, std::size_t n) {
  if (options.array_side == 0) return n;
  return std::min(options.array_side, n);
}

Result run_minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                             graph::Vertex destination, const Options& options) {
  return machine.n() == graph.size()
             ? minimum_cost_path(machine, graph, destination, options)
             : tiled_minimum_cost_path(machine, graph, destination, options);
}

Result tiled_minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                               graph::Vertex destination, const Options& options) {
  const std::size_t n = graph.size();
  const std::size_t p = machine.n();
  PPA_REQUIRE(p >= 1 && p <= n, "physical array side must be in [1, vertex count]");
  PPA_REQUIRE(machine.field() == graph.field(),
              "machine and graph must use the same h-bit field");
  PPA_REQUIRE(destination < n, "destination out of range");
  // PTN carries GLOBAL column indices through the argmin.
  PPA_REQUIRE(machine.field().representable(n - 1),
              "vertex indices must be representable in the h-bit field");

  const std::size_t blocks = (n + p - 1) / p;  // ceil(n/p) panels per axis
  const Word inf = machine.field().infinity();
  const std::size_t iteration_cap =
      options.max_iterations != 0 ? options.max_iterations : n + 2;
  const bool two_sided = options.broadcast_scheme == BroadcastScheme::TwoSidedLinear;
  // Same variant forcing as the full-array solver (see minimum_cost_path).
  const MinVariant variant = two_sided ? MinVariant::OrProbe : options.min_variant;

  obs::Collector* const observer = options.observer;
  detail::ScopedSink scoped_sink(machine, observer);
  PPA_SPAN(observer, "solve", &machine, static_cast<std::int64_t>(destination));

  ppc::Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();
  const std::size_t faults_at_entry = machine.fault_count();
  const sim::Machine::PlanCacheStats plans_at_entry = machine.plan_cache_stats();
  const sim::MaskingStats masking_at_entry = machine.masking_stats();
  const detail::ThroughputProbe throughput_at_entry =
      observer != nullptr ? detail::probe_throughput(machine) : detail::ThroughputProbe{};

  // ------------------------------------------------------------------
  // Initialization. The row-d state lives with the controller as host
  // n-vectors between panel visits; SOW starts at the 1-edge costs
  // (column d of W, the full solver's init transposed host-side) and PTN
  // at d. No array instructions are issued here, so init_steps only
  // covers wiring the physical constants below.
  // ------------------------------------------------------------------
  auto init_span = std::make_optional(obs::open_span(observer, "init", &machine));
  std::vector<graph::Weight> sow(n);
  std::vector<graph::Vertex> ptn(n, destination);
  for (std::size_t i = 0; i < n; ++i) {
    sow[i] = (i == destination) ? 0 : graph.at(i, destination);
  }

  // Per-PE constants of the p x p physical array. The carrier of the SOW
  // fragment is machine row 0 (the full array uses row d; any fixed row
  // works — the fragment rides the column buses either way).
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Pbool carrier = (ROW == Word{0});
  const Pbool not_carrier = !carrier;
  const Pbool row_end = (COL == static_cast<Word>(p - 1));  // min() cluster anchor

  // Host panel views of W, built once and reused across iterations (the
  // ARRAY still pays PanelIo for every visit; the host just avoids
  // rebuilding the same cell vector each sweep).
  std::vector<std::vector<Word>> panels(blocks * blocks);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    for (std::size_t bj = 0; bj < blocks; ++bj) {
      panels[bi * blocks + bj] = detail::panel_weights(graph, p, bi * p, bj * p);
    }
  }

  const sim::StepCounter after_init = machine.steps();
  init_span.reset();

  Result result;
  result.init_steps = after_init.since(at_entry);

  // ------------------------------------------------------------------
  // Relaxation sweeps. Each iteration covers all ceil(n/p)^2 panels —
  // visiting the ones whose column block is dirty, replaying the cached
  // readback for the rest (Options::active_panels; false visits all);
  // row-block bi folds its panels' partial minima into a host carry
  // (strict `<`, so the earliest column block wins ties and the paper's
  // smallest-next-hop tie-break survives), and the row-d updates are
  // buffered until the sweep completes (Jacobi order, like the array).
  // ------------------------------------------------------------------
  auto relax_span = std::make_optional(obs::open_span(observer, "relax", &machine));
  std::vector<Word> sow_cells(p * p);
  std::vector<Word> carry_min(p), carry_arg(p);
  std::vector<Word> next_min(n), next_arg(n);
  std::uint64_t panels_visited = 0;
  // Active-panel schedule (docs/tiling.md "Active panels"): per-column-
  // block dirty flags decide which visits can be skipped, the per-(bi,bj)
  // cache replays a skipped panel's last readback (exact under Jacobi
  // order — the panel's inputs are the static W panel and its column
  // block's fragment, both unchanged while the block stays clean), and
  // the ledger double-buffers visited loads and closes the accounting:
  // charged PanelIo + saved == the dense I*blocks^2*(p+3) exactly.
  const bool active = options.active_panels;
  detail::DirtyBlocks dirty(blocks);
  detail::PanelIoLedger ledger(machine, active);
  std::vector<Word> cache_min(active ? blocks * blocks * p : 0);
  std::vector<Word> cache_arg(active ? blocks * blocks * p : 0);
  std::uint64_t panels_skipped = 0;
  std::uint64_t active_blocks_total = 0;
  for (;;) {
    if (result.iterations >= iteration_cap) {
      // Same diagnosis as the full solver: the DP is monotone, so an
      // exhausted cap means corrupted state; report it.
      result.outcome = SolveOutcome::NonConverged;
      const sim::FaultEvent event{sim::FaultEventKind::NonConvergence,
                                  sim::StepCategory::Alu, sim::Direction::North,
                                  destination, destination, result.iterations};
      machine.report_fault(event);
      break;
    }
    const sim::StepCounter before_iteration = machine.steps();
    PPA_SPAN(observer, "relax_iter", &machine,
             static_cast<std::int64_t>(result.iterations));

    ledger.begin_sweep();
    if (active) active_blocks_total += dirty.count();
    for (std::size_t bi = 0; bi < blocks; ++bi) {
      const std::size_t base_r = bi * p;
      const std::size_t bh = std::min(p, n - base_r);
      std::fill(carry_min.begin(), carry_min.end(), inf);
      std::fill(carry_arg.begin(), carry_arg.end(), Word{0});
      for (std::size_t bj = 0; bj < blocks; ++bj) {
        const std::size_t base_c = bj * p;
        const auto panel_id = static_cast<std::int64_t>(bi * blocks + bj);
        Word* const cache_m = active ? &cache_min[(bi * blocks + bj) * p] : nullptr;
        Word* const cache_a = active ? &cache_arg[(bi * blocks + bj) * p] : nullptr;

        if (active && !dirty.dirty(bj)) {
          // ---- skipped visit: the column block's fragment is unchanged,
          //      so the cached readback IS the visit's result. Fold it in
          //      the same bj order and save the whole p+3 beats.
          ++panels_skipped;
          ledger.skip(static_cast<std::uint64_t>(p) + 3);
          for (std::size_t r = 0; r < bh; ++r) {
            if (cache_m[r] < carry_min[r]) {
              carry_min[r] = cache_m[r];
              carry_arg[r] = cache_a[r];
            }
          }
          continue;
        }
        ++panels_visited;

        // ---- panel load: W panel (p rows) + SOW fragment (1 row),
        //      counted and traced as PanelIo; under the active schedule
        //      the beats hidden by the previous panel's relax sweep are
        //      not charged (double buffering).
        auto load_span =
            std::make_optional(obs::open_span(observer, "panel_load", &machine, panel_id));
        std::fill(sow_cells.begin(), sow_cells.end(), Word{0});
        for (std::size_t c = 0; c < p; ++c) {
          const std::size_t gj = base_c + c;
          sow_cells[c] = gj < n ? sow[gj] : inf;
        }
        const Pint Wp(ctx, panels[bi * blocks + bj]);
        Pint SOWP(ctx, sow_cells);
        ledger.load(static_cast<std::uint64_t>(p) + 1);
        load_span.reset();

        // ---- panel relax: the shared core (relax_core.hpp).
        PPA_SPAN(observer, "panel_relax", &machine, panel_id);
        ledger.relax_begin();
        // Global column indices for the argmin: one ALU op per visit.
        const Pint INDEX = COL + static_cast<Word>(base_c);
        Pint MINP(ctx, inf);
        Pint PTNP(ctx, Word{0});
        ppc::where(ctx, not_carrier, [&] {
          detail::panel_candidates(Wp, carrier, options.broadcast_scheme, SOWP);
        });
        ppc::where(ctx, carrier, [&] {
          // The carrier doubles as data row 0: its fragment value is still
          // resident (the masked store above skipped it), so its candidates
          // come from a local add — necessary under the two-sided scheme,
          // where a driver never hears its own injection.
          SOWP = SOWP + Wp;
        });
        detail::panel_row_reduce(INDEX, row_end, variant, SOWP, MINP, PTNP);
        ledger.relax_end();

        // ---- panel unload: one column readback per result register
        //      (min / argmin are cluster-wide, so column 0 suffices).
        ledger.unload(2);
        for (std::size_t r = 0; r < bh; ++r) {
          const Word m = MINP.at(r, 0);
          const Word a = PTNP.at(r, 0);
          if (active) {
            cache_m[r] = m;
            cache_a[r] = a;
          }
          if (m < carry_min[r]) {
            carry_min[r] = m;
            carry_arg[r] = a;
          }
        }
      }
      for (std::size_t r = 0; r < bh; ++r) {
        next_min[base_r + r] = carry_min[r];
        next_arg[base_r + r] = carry_arg[r];
      }
    }

    // Apply the buffered row-d update; the loop test is the host's (the
    // controller already holds the fresh row, no global-OR cycle needed).
    // Change counts are kept per row block (vertex i lives in block i/p):
    // the per-panel sparsity signal active-panel virtualization needs —
    // a block whose count hits 0 has a settled SOW fragment.
    std::size_t changed = 0;
    std::vector<std::uint64_t> panel_changes(
        observer != nullptr || active ? blocks : 0, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == destination) continue;  // pinned at 0, like (d,d) on the array
      if (next_min[i] != sow[i]) {
        sow[i] = next_min[i];
        ptn[i] = static_cast<graph::Vertex>(next_arg[i]);
        ++changed;
        if (!panel_changes.empty()) ++panel_changes[i / p];
      }
    }
    if (active) dirty.update(panel_changes);

    ++result.iterations;
    if (options.record_iterations) {
      result.iteration_trace.push_back(
          IterationRecord{changed, machine.steps().since(before_iteration)});
    }
    if (observer != nullptr) {
      observer->record_iteration(static_cast<std::int64_t>(destination),
                                 result.iterations, changed, std::move(panel_changes));
    }
    if (changed == 0) break;
  }
  relax_span.reset();

  result.total_steps = machine.steps().since(at_entry);

  {
    PPA_SPAN(observer, "unload", &machine);
    result.solution.destination = destination;
    result.solution.cost = sow;
    result.solution.next = ptn;
  }

  if (observer != nullptr) {
    observer->metrics().counter(obs::metric::kSolverPanels).add(panels_visited);
    if (active) {
      obs::MetricsRegistry& metrics = observer->metrics();
      metrics.counter(obs::metric::kSolverPanelsSkipped).add(panels_skipped);
      metrics.counter(obs::metric::kSolverActiveBlocks).add(active_blocks_total);
      metrics.counter(obs::metric::kSolverPanelIoSaved).add(ledger.saved());
    }
  }
  result.masking = machine.masking_stats().since(masking_at_entry);
  detail::record_plan_cache_delta(machine, plans_at_entry, observer);
  detail::record_throughput_delta(machine, throughput_at_entry, observer);
  detail::finalize_result(machine, graph, destination, options, faults_at_entry, result);
  return result;
}

}  // namespace ppa::mcp
