// All-pairs minimum cost paths, eccentricity and diameter on the PPA.
//
// The single-destination algorithm solves one column of the all-pairs
// problem per run; n runs on one (reused) machine give the full matrix in
// O(n · p̄ · h) SIMD steps. On top of it:
//
//   * in_eccentricity(d) — the largest FINITE minimum cost into d,
//     computed ON the machine with one O(h) selected_max over row d of
//     SOW (candidates: finite entries; (d,d) = 0 keeps the candidate set
//     non-empty even for isolated destinations);
//   * diameter — the largest finite minimum cost over all ordered pairs,
//     i.e. max over d of in_eccentricity(d).
#pragma once

#include <vector>

#include "graph/weight_matrix.hpp"
#include "mcp/mcp.hpp"

namespace ppa::mcp {

struct EccentricityResult {
  Result mcp;                      // the underlying MCP run
  graph::Weight eccentricity = 0;  // max finite cost into the destination
  sim::StepCounter reduction_steps;  // the extra O(h) selected_max
};

/// Runs the MCP toward `destination` on `machine` (dispatching on the
/// machine geometry — a p x p machine with p < n rides the tiled sweep),
/// then reduces row d on the machine itself to the in-eccentricity: one
/// selected_max on the full array, or — virtualized — one selected_max
/// per ceil(n/p) fragment of the host-held cost row with a controller
/// max-fold across blocks (each fragment is 1 PanelIo beat in, 1 out).
/// Eccentricities are bit-identical across geometries and backends.
[[nodiscard]] EccentricityResult eccentricity(sim::Machine& machine,
                                              const graph::WeightMatrix& graph,
                                              graph::Vertex destination,
                                              const Options& options = {});

/// Convenience one-shot with a fresh machine honoring Options::array_side
/// (clamped to the vertex count) — every workload in the repo now runs on
/// a p x p array with n >> p, the block-folded reduction included.
[[nodiscard]] EccentricityResult solve_eccentricity(const graph::WeightMatrix& graph,
                                                    graph::Vertex destination,
                                                    const Options& options = {});

struct AllPairsResult {
  std::size_t n = 0;
  std::vector<graph::Weight> dist;  // row-major; dist[i*n + j] = cost i -> j
  std::vector<graph::Vertex> next;  // next[i*n + j] = successor of i toward j
  std::size_t total_iterations = 0;
  sim::StepCounter total_steps;
  graph::Weight diameter = 0;  // max finite dist over all ordered pairs

  /// Robustness bookkeeping (see mcp::SolveOutcome): one outcome per
  /// destination — a failed destination leaves its dist column at infinity
  /// (graceful degradation) instead of aborting the whole batch.
  std::vector<SolveOutcome> outcomes;
  std::vector<std::size_t> attempts;          // per destination, 1 = no retry
  std::vector<sim::FaultEvent> fault_events;  // merged in destination order

  [[nodiscard]] graph::Weight dist_at(graph::Vertex i, graph::Vertex j) const {
    return dist[i * n + j];
  }
  [[nodiscard]] graph::Vertex next_at(graph::Vertex i, graph::Vertex j) const {
    return next[i * n + j];
  }
  /// Destinations whose final outcome is VerificationFailed, NonConverged
  /// or HardwareFault.
  [[nodiscard]] std::size_t failed_destinations() const noexcept;
};

/// n MCP runs (one per destination) on a single reused machine.
[[nodiscard]] AllPairsResult all_pairs(const graph::WeightMatrix& graph,
                                       const Options& options = {});

/// Knobs for the coarse-grained parallel all-pairs driver. The destinations
/// are independent single-destination problems, so they can run on separate
/// simulated machines concurrently — this parallelism is a HOST artifact:
/// results, step counts and iteration totals are bit-identical for every
/// `workers` value (each destination's steps are counted on its own machine
/// and merged in destination order).
struct AllPairsOptions {
  Options mcp;              // forwarded to every minimum_cost_path run
  std::size_t workers = 1;  // host threads; 0 or 1 = sequential
};

/// All-pairs with `options.workers` destinations in flight at once, one
/// simulated Machine per worker chunk.
[[nodiscard]] AllPairsResult all_pairs(const graph::WeightMatrix& graph,
                                       const AllPairsOptions& options);

}  // namespace ppa::mcp
