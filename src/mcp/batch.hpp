// Multi-destination plane batching: k destinations per machine pass.
//
// The single-destination solvers (mcp.cpp, tiled.cpp) pay the full sweep
// machinery — weight panel loads, carrier broadcasts, bus segmentation —
// for ONE destination's row of the all-pairs matrix. But destinations are
// independent columns of the same DP over the same weight matrix: the
// panel schedule, the switch configurations and the wired-OR segmentation
// depend only on the geometry, never on d. solve_batch exploits that by
// running up to Options::batch_width destinations through one shared
// sweep schedule:
//
//   * the weight panel is loaded (and billed as PanelIo) once per panel
//     visit, not once per destination;
//   * every batch member rides the panel with its own SOW plane group —
//     fragment injection, carrier broadcast, candidate add and a fused
//     bit-serial min/argmin — under the same bus plans (which the
//     broadcast plan cache then serves from memory);
//   * iteration control is host-side: a member freezes the moment its own
//     row stops changing (its iteration count is recorded exactly as the
//     per-destination engine would), and the pass ends when ALL members
//     have converged.
//
// Rows, per-destination iteration counts and outcomes are bit-identical
// to the per-destination engine on both backends, full and tiled
// (tests/mcp_batch_test.cpp); only the step profile differs — see
// docs/batching.md for the amortized PanelIo accounting.
//
// Robustness: a member whose run fails (VerificationFailed, NonConverged,
// HardwareFault) retries ALONE on a fault-free word-backend oracle of the
// same geometry, without re-running the rest of the batch
// (tests/mcp_batch_fault_test.cpp).
#pragma once

#include <memory>
#include <vector>

#include "graph/weight_matrix.hpp"
#include "mcp/mcp.hpp"

namespace ppa::mcp {

/// Solves toward every destination in `destinations`, batching up to
/// Options::batch_width of them per machine pass. Returns one Result per
/// destination, in input order. With batch_width <= 1 (or a single
/// destination) this is exactly a loop of solve(): the per-destination
/// engine with the full recovery policy.
[[nodiscard]] std::vector<Result> solve_batch(const graph::WeightMatrix& graph,
                                              const std::vector<graph::Vertex>& destinations,
                                              const Options& options = {});

/// The batching core on a caller-owned machine (the all-pairs driver's
/// entry point): partitions `destinations` into groups of at most
/// Options::batch_width, runs each group through one shared sweep
/// schedule on `machine`, then applies the per-member retry policy on
/// `oracle` — a fault-free word-backend machine of the same geometry,
/// created on first use and reusable across calls (the same contract as
/// solve_with_recovery). Batch members share the machine's step counter;
/// each member's Result::total_steps reports the whole group's delta
/// (plus its own retries), so callers aggregating steps must count each
/// group once — see docs/batching.md.
[[nodiscard]] std::vector<Result> solve_batch_on(
    sim::Machine& machine, std::unique_ptr<sim::Machine>& oracle,
    const graph::WeightMatrix& graph, const std::vector<graph::Vertex>& destinations,
    const Options& options);

}  // namespace ppa::mcp
