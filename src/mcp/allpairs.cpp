#include "mcp/allpairs.hpp"

#include <algorithm>
#include <memory>

#include "mcp/batch.hpp"
#include "mcp/tiled.hpp"
#include "obs/collector.hpp"
#include "ppc/primitives.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ppa::mcp {

namespace {

using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Word;

}  // namespace

EccentricityResult eccentricity(sim::Machine& machine, const graph::WeightMatrix& graph,
                                graph::Vertex destination, const Options& options) {
  EccentricityResult out;
  out.mcp = run_minimum_cost_path(machine, graph, destination, options);

  const std::size_t n = graph.size();
  const std::size_t p = machine.n();
  const Word inf = graph.infinity();
  ppc::Context ctx(machine);

  if (p == n) {
    // After the run the costs are resident in row d of the PEs' SOW
    // registers; the Result copied them out but the machine state is
    // unchanged. Rebuild that register view and reduce it on the machine:
    // one OR-probe selected_max over the finite entries of row d. The
    // candidate set is never empty ((d,d) == 0), and the OR-probe variant
    // leaves the other rows' empty selections at a harmless 0 instead of a
    // floating bus read.
    std::vector<Word> cells(machine.pe_count(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      cells[destination * n + i] = out.mcp.solution.cost[i];
    }

    const sim::StepCounter before = machine.steps();
    const Pint SOW(ctx, cells);
    const Pbool row_is_d = (ppc::row_of(ctx) == static_cast<Word>(destination));
    const Pbool row_end = (ppc::col_of(ctx) == static_cast<Word>(n - 1));
    const Pbool finite_in_d = row_is_d & !(SOW == inf);
    const Pint row_max = ppc::selected_max_orprobe(SOW, Direction::West, row_end, finite_in_d);
    out.eccentricity = row_max.at(destination, 0);
    out.reduction_steps = machine.steps().since(before);
    return out;
  }

  // Virtualized reduction (docs/tiling.md): the row-d costs only exist as
  // the controller's host vector after a tiled run, so the selected_max
  // folds block by block — each ceil(n/p) fragment rides machine row 0
  // (1 PanelIo beat in, 1 readback beat out), reduces with the same
  // OR-probe selected_max over its finite entries, and the controller
  // max-folds the per-block results. A fragment with no finite entry
  // reduces to the OR-probe's harmless 0, which can never exceed the true
  // maximum (the destination's own 0 is always finite).
  const std::size_t blocks = (n + p - 1) / p;
  const sim::StepCounter before = machine.steps();
  const Pbool row0 = (ppc::row_of(ctx) == Word{0});
  const Pbool row_end = (ppc::col_of(ctx) == static_cast<Word>(p - 1));
  std::vector<Word> cells(machine.pe_count(), 0);
  graph::Weight ecc = 0;
  for (std::size_t bj = 0; bj < blocks; ++bj) {
    const std::size_t base_c = bj * p;
    for (std::size_t c = 0; c < p; ++c) {
      const std::size_t gj = base_c + c;
      cells[c] = gj < n ? out.mcp.solution.cost[gj] : inf;
    }
    const Pint SOW(ctx, cells);
    machine.charge_panel_io(1);
    const Pbool finite = row0 & !(SOW == inf);
    const Pint block_max = ppc::selected_max_orprobe(SOW, Direction::West, row_end, finite);
    machine.charge_panel_io(1);
    ecc = std::max(ecc, block_max.at(0, 0));
  }
  out.eccentricity = ecc;
  out.reduction_steps = machine.steps().since(before);
  return out;
}

EccentricityResult solve_eccentricity(const graph::WeightMatrix& graph,
                                      graph::Vertex destination, const Options& options) {
  sim::MachineConfig config;
  config.n = effective_array_side(options, graph.size());
  config.bits = graph.field().bits();
  config.backend = options.backend;
  sim::Machine machine(config);
  return eccentricity(machine, graph, destination, options);
}

AllPairsResult all_pairs(const graph::WeightMatrix& graph, const Options& options) {
  return all_pairs(graph, AllPairsOptions{options, 1});
}

std::size_t AllPairsResult::failed_destinations() const noexcept {
  std::size_t failed = 0;
  for (const SolveOutcome outcome : outcomes) {
    if (outcome == SolveOutcome::VerificationFailed ||
        outcome == SolveOutcome::NonConverged || outcome == SolveOutcome::HardwareFault) {
      ++failed;
    }
  }
  return failed;
}

AllPairsResult all_pairs(const graph::WeightMatrix& graph, const AllPairsOptions& options) {
  const std::size_t n = graph.size();
  sim::MachineConfig config;
  // Worker machines honor Options::array_side: p < n runs every
  // destination through the tiled sweep (solve_with_recovery dispatches
  // on the machine geometry).
  config.n = effective_array_side(options.mcp, n);
  config.bits = graph.field().bits();
  config.backend = options.mcp.backend;
  config.checked = options.mcp.checked || !options.mcp.faults.empty();
  config.masking = masking_of(options.mcp.recovery);

  AllPairsResult result;
  result.n = n;
  result.dist.assign(n * n, graph.infinity());
  result.next.assign(n * n, 0);
  result.outcomes.assign(n, SolveOutcome::Unchecked);
  result.attempts.assign(n, 1);

  // Each destination is an independent problem; a worker runs a contiguous
  // chunk of destinations on its own simulated machine and records each
  // run's step delta separately. Workers write disjoint columns of
  // dist/next and disjoint slots of the per-destination arrays, so no
  // synchronization is needed beyond the pool's join. A destination whose
  // final outcome is still a failure keeps its infinity-filled dist column
  // — the batch degrades per destination instead of aborting.
  std::vector<sim::StepCounter> per_destination(n);
  std::vector<std::size_t> iterations(n, 0);
  std::vector<std::vector<sim::FaultEvent>> events(n);
  // One collector per destination, merged below in destination order —
  // the StepCounter idiom extended to metrics, so the observed totals are
  // identical for every worker count.
  obs::Collector* const observer = options.mcp.observer;
  std::vector<std::unique_ptr<obs::Collector>> collectors(observer != nullptr ? n : 0);
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    sim::Machine machine(config);
    if (!options.mcp.faults.empty()) machine.inject_faults(options.mcp.faults);
    std::unique_ptr<sim::Machine> oracle;  // shared across this worker's chunk
    Options run_options = options.mcp;
    for (std::size_t d = begin; d < end; ++d) {
      if (observer != nullptr) {
        collectors[d] = std::make_unique<obs::Collector>();
        run_options.observer = collectors[d].get();
      }
      const sim::StepCounter before = machine.steps();
      const sim::StepCounter oracle_before = oracle ? oracle->steps() : sim::StepCounter{};
      const Result run = solve_with_recovery(machine, oracle, graph, d, run_options);
      per_destination[d] = machine.steps().since(before);
      if (oracle) per_destination[d].merge(oracle->steps().since(oracle_before));
      iterations[d] = run.iterations;
      result.outcomes[d] = run.outcome;
      result.attempts[d] = run.attempts;
      events[d] = run.fault_events;
      // An aborted attempt already reports an all-infinity column, so the
      // unconditional copy preserves the degradation default.
      for (graph::Vertex i = 0; i < n; ++i) {
        result.dist[i * n + d] = run.solution.cost[i];
        result.next[i * n + d] = run.solution.next[i];
      }
    }
  };

  // Multi-destination batching (mcp/batch.hpp, docs/batching.md): with
  // batch_width > 1 under the BitPlane backend the destinations are
  // partitioned into GLOBAL groups of at most batch_width — group
  // composition never depends on the worker count, so results, outcomes
  // and merged metrics stay worker-count independent — and each group
  // rides one shared machine pass. The word backend keeps the
  // per-destination path above and remains the differential oracle.
  const std::size_t width = options.mcp.batch_width;
  const bool batched =
      width > 1 && n > 1 && options.mcp.backend == sim::ExecBackend::BitPlane;
  const auto run_groups = [&](std::size_t gbegin, std::size_t gend) {
    sim::Machine machine(config);
    if (!options.mcp.faults.empty()) machine.inject_faults(options.mcp.faults);
    std::unique_ptr<sim::Machine> oracle;  // shared across this worker's groups
    Options run_options = options.mcp;
    for (std::size_t g = gbegin; g < gend; ++g) {
      const std::size_t first = g * width;
      const std::size_t last = std::min(first + width, n);
      std::vector<graph::Vertex> dests;
      dests.reserve(last - first);
      for (std::size_t d = first; d < last; ++d) dests.push_back(d);
      if (observer != nullptr) {
        collectors[first] = std::make_unique<obs::Collector>();
        run_options.observer = collectors[first].get();
      }
      const sim::StepCounter before = machine.steps();
      const sim::StepCounter oracle_before = oracle ? oracle->steps() : sim::StepCounter{};
      const std::vector<Result> runs =
          solve_batch_on(machine, oracle, graph, dests, run_options);
      // The group's machine pass is shared; its step delta is counted
      // ONCE, on the group's first destination slot (docs/batching.md).
      per_destination[first] = machine.steps().since(before);
      if (oracle) per_destination[first].merge(oracle->steps().since(oracle_before));
      for (std::size_t gi = 0; gi < runs.size(); ++gi) {
        const std::size_t d = first + gi;
        const Result& run = runs[gi];
        iterations[d] = run.iterations;
        result.outcomes[d] = run.outcome;
        result.attempts[d] = run.attempts;
        events[d] = run.fault_events;
        for (graph::Vertex i = 0; i < n; ++i) {
          result.dist[i * n + d] = run.solution.cost[i];
          result.next[i * n + d] = run.solution.next[i];
        }
      }
    }
  };

  if (batched) {
    const std::size_t groups = (n + width - 1) / width;
    if (options.workers > 1 && groups > 1) {
      util::ThreadPool pool(std::min(options.workers, groups));
      pool.parallel_for(groups, run_groups);
    } else {
      run_groups(0, groups);
    }
  } else if (options.workers > 1 && n > 1) {
    util::ThreadPool pool(std::min(options.workers, n));
    pool.parallel_for(n, run_range);
  } else {
    run_range(0, n);
  }

  // Deterministic reduction: merge in destination order, whatever the
  // thread count was. StepCounter::merge is a component-wise sum, so even
  // the order only matters in principle — it is fixed here anyway.
  for (graph::Vertex d = 0; d < n; ++d) {
    result.total_steps.merge(per_destination[d]);
    result.total_iterations += iterations[d];
    result.fault_events.insert(result.fault_events.end(), events[d].begin(),
                               events[d].end());
    // Batched runs keep one collector per GROUP (stored at the group's
    // first destination); the other slots stay empty.
    if (observer != nullptr && collectors[d] != nullptr) observer->merge(*collectors[d]);
  }
  for (const graph::Weight w : result.dist) {
    if (w != graph.infinity()) result.diameter = std::max(result.diameter, w);
  }
  return result;
}

}  // namespace ppa::mcp
