#include "mcp/relax_core.hpp"

#include <algorithm>

#include "mcp/verify.hpp"
#include "obs/collector.hpp"
#include "ppc/primitives.hpp"
#include "util/thread_pool.hpp"

namespace ppa::mcp::detail {

using ppc::Pbool;
using ppc::Pint;
using sim::Direction;

Pint row_min(MinVariant variant, const Pint& sow, const Pbool& row_end) {
  return variant == MinVariant::Paper ? ppc::pmin(sow, Direction::West, row_end)
                                      : ppc::pmin_orprobe(sow, Direction::West, row_end);
}

Pint row_argmin(MinVariant variant, const Pint& index, const Pbool& row_end,
                const Pbool& is_min) {
  return variant == MinVariant::Paper
             ? ppc::selected_min(index, Direction::West, row_end, is_min)
             : ppc::selected_min_orprobe(index, Direction::West, row_end, is_min);
}

Pint scheme_broadcast(const Pint& value, Direction dir, const Pbool& open,
                      BroadcastScheme scheme) {
  return scheme == BroadcastScheme::TwoSidedLinear
             ? ppc::two_sided_broadcast(value, dir, open)
             : ppc::broadcast(value, dir, open);
}

void panel_candidates(const Pint& W, const Pbool& carrier_row, BroadcastScheme scheme,
                      Pint& sow) {
  sow = scheme_broadcast(sow, Direction::South, carrier_row, scheme) + W;
}

void panel_row_reduce(const Pint& index, const Pbool& row_end, MinVariant variant,
                      const Pint& sow, Pint& min_sow, Pint& ptn) {
  min_sow = row_min(variant, sow, row_end);
  ptn = row_argmin(variant, index, row_end, min_sow == sow);
}

ScopedSink::ScopedSink(sim::Machine& machine, obs::Collector* observer)
    : machine_(machine), previous_(machine.trace()) {
  if (observer != nullptr && previous_ == nullptr) machine_.set_trace(observer);
}

ScopedSink::~ScopedSink() { machine_.set_trace(previous_); }

std::vector<sim::Word> panel_weights(const graph::WeightMatrix& g, std::size_t p,
                                     std::size_t base_r, std::size_t base_c) {
  const std::size_t n = g.size();
  const sim::Word inf = g.infinity();
  std::vector<sim::Word> cells(p * p, inf);
  const std::size_t bh = std::min(p, n - base_r);
  const std::size_t bw = std::min(p, n - base_c);
  for (std::size_t r = 0; r < bh; ++r) {
    const std::size_t gi = base_r + r;
    for (std::size_t c = 0; c < bw; ++c) {
      const std::size_t gj = base_c + c;
      cells[r * p + c] = (gi == gj) ? sim::Word{0} : g.at(gi, gj);
    }
  }
  return cells;
}

void record_plan_cache_delta(const sim::Machine& machine,
                             sim::Machine::PlanCacheStats entry,
                             obs::Collector* observer) {
  if (observer == nullptr) return;
  const sim::Machine::PlanCacheStats now = machine.plan_cache_stats();
  obs::MetricsRegistry& metrics = observer->metrics();
  metrics.counter(obs::metric::kPlanCacheHits).add(now.hits - entry.hits);
  metrics.counter(obs::metric::kPlanCacheMisses).add(now.misses - entry.misses);
}

ThroughputProbe probe_throughput(sim::Machine& machine) {
  ThroughputProbe probe;
  probe.sweeps = machine.sweep_stats();
  if (util::ThreadPool* pool = machine.host_pool(); pool != nullptr) {
    probe.pool_busy = pool->busy_seconds();
  }
  return probe;
}

void record_throughput_delta(sim::Machine& machine, const ThroughputProbe& entry,
                             obs::Collector* observer) {
  if (observer == nullptr) return;
  obs::MetricsRegistry& metrics = observer->metrics();
  const sim::plane_kernels::SweepStats delta = machine.sweep_stats().since(entry.sweeps);
  metrics.counter(obs::metric::kSweepDispatches).add(delta.dispatches);
  metrics.counter(obs::metric::kSweepWords).add(delta.words);

  util::ThreadPool* const pool = machine.host_pool();
  if (pool == nullptr) return;
  // Per-lane busy delta for this solve. The pool may be shared by several
  // machines, so this is an upper bound under concurrency — which is
  // exactly the pessimism a worst-case gauge wants.
  const std::vector<double> now = pool->busy_seconds();
  double max_busy = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < now.size(); ++i) {
    const double before = i < entry.pool_busy.size() ? entry.pool_busy[i] : 0.0;
    const double lane = now[i] - before;
    max_busy = std::max(max_busy, lane);
    total += lane;
  }
  if (max_busy <= 0.0) return;  // the pool never ran during this solve
  obs::Gauge& busy = metrics.gauge(obs::metric::kPoolBusyMax);
  busy.set(std::max(busy.value(), max_busy));
  const double mean = total / static_cast<double>(now.size());
  if (mean > 0.0) {
    obs::Gauge& imbalance = metrics.gauge(obs::metric::kPoolImbalance);
    imbalance.set(std::max(imbalance.value(), max_busy / mean));
  }
}

void finalize_result(sim::Machine& machine, const graph::WeightMatrix& graph,
                     graph::Vertex destination, const Options& options,
                     std::size_t faults_at_entry, Result& result) {
  // Harvest this run's checked-execution diagnostics (delta of the
  // machine's capped fault log).
  const std::vector<sim::FaultEvent>& log = machine.fault_events();
  for (std::size_t i = faults_at_entry; i < log.size(); ++i) {
    result.fault_events.push_back(log[i]);
  }
  const bool machine_faulted = machine.fault_count() > faults_at_entry;

  // Outcome: non-convergence dominates (row d is partial data), then the
  // host certificate, then any machine diagnostics, then the masking
  // counters — a run that completed only because TMR / ECC corrected bus
  // cycles is success-with-information (MaskedFaults), unless decode left
  // uncorrectable residue, which is as untrustworthy as any other
  // hardware fault.
  if (result.outcome != SolveOutcome::NonConverged) {
    if (options.verify) {
      PPA_SPAN(options.observer, "verify", &machine);
      const CertificateReport report = check_certificate(graph, result.solution);
      if (report.ok) {
        result.outcome = SolveOutcome::Verified;
      } else {
        result.outcome = SolveOutcome::VerificationFailed;
        result.verify_detail = report.detail;
        const sim::FaultEvent event{sim::FaultEventKind::VerificationFailed,
                                    sim::StepCategory::Alu, sim::Direction::North,
                                    destination, destination, 1};
        machine.report_fault(event);
        result.fault_events.push_back(event);
      }
    } else if (machine_faulted) {
      result.outcome = SolveOutcome::HardwareFault;
    } else if (result.masking.uncorrectable > 0) {
      result.outcome = SolveOutcome::HardwareFault;
    } else if (result.masking.corrections > 0) {
      result.outcome = SolveOutcome::MaskedFaults;
    }
  }

  if (options.observer != nullptr) {
    obs::MetricsRegistry& metrics = options.observer->metrics();
    metrics.counter(obs::metric::kSolverRuns).add(1);
    metrics.counter(obs::metric::kSolverIterations).add(result.iterations);
    metrics.counter(std::string(obs::metric::kOutcomePrefix) + name_of(result.outcome))
        .add(1);
    if (result.masking.votes != 0) {
      metrics.counter(obs::metric::kMaskVotes).add(result.masking.votes);
      metrics.counter(obs::metric::kMaskCorrections).add(result.masking.corrections);
      metrics.counter(obs::metric::kMaskUncorrectable).add(result.masking.uncorrectable);
    }
  }
}

}  // namespace ppa::mcp::detail
