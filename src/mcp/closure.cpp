#include "mcp/closure.hpp"

#include <algorithm>

#include "mcp/relax_core.hpp"
#include "ppc/primitives.hpp"
#include "util/check.hpp"

namespace ppa::mcp {

namespace {

using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Flag;
using sim::Word;

/// The boolean adjacency loaded into the PEs: hasEdge(i,j), diagonal true
/// (the j == i term preserves R_i across iterations, mirroring the MCP's
/// zero diagonal).
std::vector<Flag> adjacency_flags(const graph::WeightMatrix& g) {
  const std::size_t n = g.size();
  std::vector<Flag> flags(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      flags[i * n + j] = (i == j || g.has_edge(i, j)) ? Flag{1} : Flag{0};
    }
  }
  return flags;
}

/// Host view of adjacency panel (base_r, base_c) on a p x p machine: the
/// boolean twin of detail::panel_weights — diagonal reflexive, padding
/// rows/columns false (they contribute nothing to a wired-OR).
std::vector<Flag> panel_adjacency(const graph::WeightMatrix& g, std::size_t p,
                                  std::size_t base_r, std::size_t base_c) {
  const std::size_t n = g.size();
  std::vector<Flag> flags(p * p, 0);
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t gi = base_r + r;
    if (gi >= n) break;
    for (std::size_t c = 0; c < p; ++c) {
      const std::size_t gj = base_c + c;
      if (gj >= n) break;
      flags[r * p + c] = (gi == gj || g.has_edge(gi, gj)) ? Flag{1} : Flag{0};
    }
  }
  return flags;
}

/// The dense boolean DP: machine side == vertex count, adjacency resident.
ReachabilityResult full_reachability(sim::Machine& machine, const graph::WeightMatrix& graph,
                                     graph::Vertex destination) {
  const std::size_t n = graph.size();
  PPA_REQUIRE(destination < n, "destination out of range");

  ppc::Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();

  const Pbool EDGE(ctx, adjacency_flags(graph));
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Word d = static_cast<Word>(destination);
  const Pbool row_is_d = (ROW == d);
  const Pbool col_is_d = (COL == d);
  const Pbool on_diagonal = (ROW == COL);
  const Pbool row_end = (COL == static_cast<Word>(n - 1));

  // Init: R[d][j] = hasEdge(j, d) — column d transposed into row d, the
  // same two-bus-cycle pattern as the MCP init (and R[d][d] = true via
  // the reflexive diagonal).
  Pbool R(ctx, false);
  const Pbool edges_into_d = ppc::broadcast(EDGE, Direction::East, col_is_d);
  ppc::where(ctx, row_is_d, [&] { R = ppc::broadcast(edges_into_d, Direction::South, on_diagonal); });

  ReachabilityResult result;
  result.destination = destination;
  result.init_steps = machine.steps().since(at_entry);

  for (;;) {
    PPA_REQUIRE(result.iterations < n + 2,
                "reachability failed to converge within the iteration cap");
    Pbool changed(ctx, false);
    Pbool OLD(ctx, false);
    Pbool NEW_R(ctx, false);

    // cand(i,j) = hasEdge(i,j) AND R[d][j]; row-wide OR in ONE bus cycle.
    const Pbool r_by_column = ppc::broadcast(R, Direction::South, row_is_d);
    NEW_R.store_all(ppc::bus_or(EDGE & r_by_column, Direction::West, row_end));

    ppc::where(ctx, row_is_d, [&] {
      OLD = R;
      R = ppc::broadcast(NEW_R, Direction::South, on_diagonal);
      changed = (R != OLD);
    });

    ++result.iterations;
    if (!ppc::any(changed)) break;
  }

  result.total_steps = machine.steps().since(at_entry);
  result.reachable.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.reachable[i] = R.at(destination, i);
  }
  return result;
}

/// The virtualized boolean DP (docs/tiling.md): the reach row lives with
/// the controller as a host n-vector, each iteration sweeps the
/// ceil(n/p)^2 adjacency panels in Jacobi order (every panel reads LAST
/// iteration's reach fragment), and row-block partials are OR-folded
/// host-side. A panel visit costs p+2 PanelIo beats: the p adjacency rows
/// + 1 reach fragment in, 1 wired-OR column readback out. Convergence is
/// the host's comparison of the folded row against the previous one — the
/// same count as the dense run's global-OR test, final no-change sweep
/// included. The active-panel schedule is exact here for the same Jacobi
/// reason as the MCP's, with a one-bit cache per (panel, row).
ReachabilityResult tiled_reachability(sim::Machine& machine, const graph::WeightMatrix& graph,
                                      graph::Vertex destination,
                                      const ClosureOptions& options) {
  const std::size_t n = graph.size();
  const std::size_t p = machine.n();
  PPA_REQUIRE(p >= 1 && p <= n, "physical array side must be in [1, vertex count]");
  PPA_REQUIRE(destination < n, "destination out of range");
  const std::size_t blocks = (n + p - 1) / p;

  ppc::Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();

  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Pbool carrier = (ROW == Word{0});
  const Pbool row_end = (COL == static_cast<Word>(p - 1));

  std::vector<std::vector<Flag>> panels(blocks * blocks);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    for (std::size_t bj = 0; bj < blocks; ++bj) {
      panels[bi * blocks + bj] = panel_adjacency(graph, p, bi * p, bj * p);
    }
  }

  // The dense init's row-d state, computed by the controller (reflexive:
  // the destination reaches itself). No array instructions are issued, so
  // init_steps covers only the constants above.
  std::vector<std::uint8_t> reach(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    reach[j] = (j == destination || graph.has_edge(j, destination)) ? 1 : 0;
  }

  ReachabilityResult result;
  result.destination = destination;
  result.init_steps = machine.steps().since(at_entry);

  const bool active = options.active_panels;
  detail::DirtyBlocks dirty(blocks);
  detail::PanelIoLedger ledger(machine, active);
  std::vector<std::uint8_t> cache(active ? blocks * blocks * p : 0);
  std::vector<std::uint8_t> carry(p), next(n);
  std::vector<Flag> frag(p * p, 0);

  for (;;) {
    PPA_REQUIRE(result.iterations < n + 2,
                "reachability failed to converge within the iteration cap");
    ledger.begin_sweep();
    for (std::size_t bi = 0; bi < blocks; ++bi) {
      const std::size_t base_r = bi * p;
      const std::size_t bh = std::min(p, n - base_r);
      std::fill(carry.begin(), carry.end(), std::uint8_t{0});
      for (std::size_t bj = 0; bj < blocks; ++bj) {
        const std::size_t base_c = bj * p;
        std::uint8_t* const cached = active ? &cache[(bi * blocks + bj) * p] : nullptr;

        if (active && !dirty.dirty(bj)) {
          ++result.panels_skipped;
          ledger.skip(static_cast<std::uint64_t>(p) + 2);
          for (std::size_t r = 0; r < bh; ++r) carry[r] |= cached[r];
          continue;
        }
        ++result.panels_visited;

        // ---- panel load: adjacency panel (p rows) + reach fragment on
        //      the carrier row (1 row).
        for (std::size_t c = 0; c < p; ++c) {
          const std::size_t gj = base_c + c;
          frag[c] = (gj < n && reach[gj] != 0) ? Flag{1} : Flag{0};
        }
        const Pbool EDGEP(ctx, panels[bi * blocks + bj]);
        const Pbool RF(ctx, frag);
        ledger.load(static_cast<std::uint64_t>(p) + 1);

        // ---- panel relax: one column broadcast + one wired-OR.
        ledger.relax_begin();
        const Pbool r_by_col = ppc::broadcast(RF, Direction::South, carrier);
        const Pbool NEW_R = ppc::bus_or(EDGEP & r_by_col, Direction::West, row_end);
        ledger.relax_end();

        // ---- panel unload: the OR line is cluster-wide; column 0 is one
        //      readback beat.
        ledger.unload(1);
        for (std::size_t r = 0; r < bh; ++r) {
          const std::uint8_t bit = NEW_R.at(r, 0) ? 1 : 0;
          if (active) cached[r] = bit;
          carry[r] |= bit;
        }
      }
      for (std::size_t r = 0; r < bh; ++r) next[base_r + r] = carry[r];
    }

    // Jacobi apply: reach growth is monotone (the reflexive diagonal
    // keeps every set bit), so the per-block change counts feed the dirty
    // flags exactly as in the MCP sweep.
    std::size_t changed = 0;
    std::vector<std::uint64_t> block_changes(blocks, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (next[i] != reach[i]) {
        reach[i] = next[i];
        ++block_changes[i / p];
        ++changed;
      }
    }
    if (active) dirty.update(block_changes);

    ++result.iterations;
    if (changed == 0) break;
  }

  result.total_steps = machine.steps().since(at_entry);
  result.panel_io_saved = ledger.saved();
  result.reachable.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.reachable[i] = reach[i] != 0;
  }
  return result;
}

}  // namespace

ReachabilityResult reachability(sim::Machine& machine, const graph::WeightMatrix& graph,
                                graph::Vertex destination, const ClosureOptions& options) {
  return machine.n() == graph.size()
             ? full_reachability(machine, graph, destination)
             : tiled_reachability(machine, graph, destination, options);
}

ReachabilityResult solve_reachability(const graph::WeightMatrix& graph,
                                      graph::Vertex destination,
                                      const ClosureOptions& options) {
  const std::size_t n = graph.size();
  sim::MachineConfig config;
  config.n = options.array_side == 0 ? n : std::min(options.array_side, n);
  config.bits = graph.field().bits();
  config.backend = options.backend;
  sim::Machine machine(config);
  return reachability(machine, graph, destination, options);
}

ClosureResult transitive_closure(const graph::WeightMatrix& graph,
                                 const ClosureOptions& options) {
  const std::size_t n = graph.size();
  sim::MachineConfig config;
  config.n = options.array_side == 0 ? n : std::min(options.array_side, n);
  config.bits = graph.field().bits();
  config.backend = options.backend;
  sim::Machine machine(config);

  ClosureResult result;
  result.n = n;
  result.closed.assign(n * n, false);
  for (graph::Vertex d = 0; d < n; ++d) {
    const ReachabilityResult run = reachability(machine, graph, d, options);
    result.total_iterations += run.iterations;
    for (graph::Vertex i = 0; i < n; ++i) result.closed[i * n + d] = run.reachable[i];
  }
  result.total_steps = machine.steps();
  return result;
}

}  // namespace ppa::mcp
