#include "mcp/closure.hpp"

#include "ppc/primitives.hpp"
#include "util/check.hpp"

namespace ppa::mcp {

namespace {

using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Flag;
using sim::Word;

/// The boolean adjacency loaded into the PEs: hasEdge(i,j), diagonal true
/// (the j == i term preserves R_i across iterations, mirroring the MCP's
/// zero diagonal).
std::vector<Flag> adjacency_flags(const graph::WeightMatrix& g) {
  const std::size_t n = g.size();
  std::vector<Flag> flags(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      flags[i * n + j] = (i == j || g.has_edge(i, j)) ? Flag{1} : Flag{0};
    }
  }
  return flags;
}

}  // namespace

ReachabilityResult reachability(sim::Machine& machine, const graph::WeightMatrix& graph,
                                graph::Vertex destination) {
  const std::size_t n = graph.size();
  PPA_REQUIRE(machine.n() == n, "machine side must equal the vertex count");
  PPA_REQUIRE(destination < n, "destination out of range");

  ppc::Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();

  const Pbool EDGE(ctx, adjacency_flags(graph));
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Word d = static_cast<Word>(destination);
  const Pbool row_is_d = (ROW == d);
  const Pbool col_is_d = (COL == d);
  const Pbool on_diagonal = (ROW == COL);
  const Pbool row_end = (COL == static_cast<Word>(n - 1));

  // Init: R[d][j] = hasEdge(j, d) — column d transposed into row d, the
  // same two-bus-cycle pattern as the MCP init (and R[d][d] = true via
  // the reflexive diagonal).
  Pbool R(ctx, false);
  const Pbool edges_into_d = ppc::broadcast(EDGE, Direction::East, col_is_d);
  ppc::where(ctx, row_is_d, [&] { R = ppc::broadcast(edges_into_d, Direction::South, on_diagonal); });

  ReachabilityResult result;
  result.destination = destination;
  result.init_steps = machine.steps().since(at_entry);

  for (;;) {
    PPA_REQUIRE(result.iterations < n + 2,
                "reachability failed to converge within the iteration cap");
    Pbool changed(ctx, false);
    Pbool OLD(ctx, false);
    Pbool NEW_R(ctx, false);

    // cand(i,j) = hasEdge(i,j) AND R[d][j]; row-wide OR in ONE bus cycle.
    const Pbool r_by_column = ppc::broadcast(R, Direction::South, row_is_d);
    NEW_R.store_all(ppc::bus_or(EDGE & r_by_column, Direction::West, row_end));

    ppc::where(ctx, row_is_d, [&] {
      OLD = R;
      R = ppc::broadcast(NEW_R, Direction::South, on_diagonal);
      changed = (R != OLD);
    });

    ++result.iterations;
    if (!ppc::any(changed)) break;
  }

  result.total_steps = machine.steps().since(at_entry);
  result.reachable.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.reachable[i] = R.at(destination, i);
  }
  return result;
}

ReachabilityResult solve_reachability(const graph::WeightMatrix& graph,
                                      graph::Vertex destination,
                                      const ClosureOptions& options) {
  sim::MachineConfig config;
  config.n = graph.size();
  config.bits = graph.field().bits();
  config.backend = options.backend;
  sim::Machine machine(config);
  return reachability(machine, graph, destination);
}

ClosureResult transitive_closure(const graph::WeightMatrix& graph,
                                 const ClosureOptions& options) {
  const std::size_t n = graph.size();
  sim::MachineConfig config;
  config.n = n;
  config.bits = graph.field().bits();
  config.backend = options.backend;
  sim::Machine machine(config);

  ClosureResult result;
  result.n = n;
  result.closed.assign(n * n, false);
  for (graph::Vertex d = 0; d < n; ++d) {
    const ReachabilityResult run = reachability(machine, graph, d);
    result.total_iterations += run.iterations;
    for (graph::Vertex i = 0; i < n; ++i) result.closed[i * n + d] = run.reachable[i];
  }
  result.total_steps = machine.steps();
  return result;
}

}  // namespace ppa::mcp
