#include "mcp/mcp.hpp"

#include <vector>

#include "mcp/relax_core.hpp"
#include "mcp/tiled.hpp"
#include "obs/collector.hpp"
#include "ppc/primitives.hpp"
#include "util/check.hpp"

namespace ppa::mcp {

const char* name_of(SolveOutcome outcome) noexcept {
  switch (outcome) {
    case SolveOutcome::Unchecked: return "unchecked";
    case SolveOutcome::Verified: return "verified";
    case SolveOutcome::VerificationFailed: return "verification-failed";
    case SolveOutcome::NonConverged: return "non-converged";
    case SolveOutcome::HardwareFault: return "hardware-fault";
    case SolveOutcome::MaskedFaults: return "masked-faults";
  }
  return "?";
}

const char* name_of(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::Retry: return "retry";
    case RecoveryPolicy::Tmr: return "tmr";
    case RecoveryPolicy::Ecc: return "ecc";
    case RecoveryPolicy::TmrThenRetry: return "tmr+retry";
  }
  return "?";
}

sim::BusMasking masking_of(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::Retry: return sim::BusMasking::None;
    case RecoveryPolicy::Tmr:
    case RecoveryPolicy::TmrThenRetry: return sim::BusMasking::Tmr;
    case RecoveryPolicy::Ecc: return sim::BusMasking::Ecc;
  }
  return sim::BusMasking::None;
}

bool retry_allowed(RecoveryPolicy policy) noexcept {
  return policy == RecoveryPolicy::Retry || policy == RecoveryPolicy::TmrThenRetry;
}

namespace {

using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Word;

/// The weight matrix as loaded into the PEs: w_ij row-major with the
/// diagonal forced to 0 (see header).
std::vector<Word> machine_weights(const graph::WeightMatrix& g) {
  const std::size_t n = g.size();
  std::vector<Word> cells(g.cells().begin(), g.cells().end());
  for (std::size_t i = 0; i < n; ++i) cells[i * n + i] = 0;
  return cells;
}

}  // namespace

Result minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                         graph::Vertex destination, const Options& options) {
  const std::size_t n = graph.size();
  PPA_REQUIRE(machine.n() == n, "machine side must equal the vertex count");
  PPA_REQUIRE(machine.field() == graph.field(),
              "machine and graph must use the same h-bit field");
  PPA_REQUIRE(destination < n, "destination out of range");

  const std::size_t iteration_cap =
      options.max_iterations != 0 ? options.max_iterations : n + 2;
  const bool two_sided = options.broadcast_scheme == BroadcastScheme::TwoSidedLinear;
  // The two-sided scheme cannot run the paper min()'s routing step (see
  // BroadcastScheme), so it always uses the OR-probe minimum.
  const MinVariant variant = two_sided ? MinVariant::OrProbe : options.min_variant;

  obs::Collector* const observer = options.observer;
  detail::ScopedSink scoped_sink(machine, observer);
  PPA_SPAN(observer, "solve", &machine, static_cast<std::int64_t>(destination));

  ppc::Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();
  const std::size_t faults_at_entry = machine.fault_count();
  const sim::Machine::PlanCacheStats plans_at_entry = machine.plan_cache_stats();
  const sim::MaskingStats masking_at_entry = machine.masking_stats();
  const detail::ThroughputProbe throughput_at_entry =
      observer != nullptr ? detail::probe_throughput(machine) : detail::ThroughputProbe{};

  // ------------------------------------------------------------------
  // Data layout (paper Section 3): W, SOW, PTN are n x n parallel ints;
  // only row d of SOW / PTN is meaningful at the end.
  // ------------------------------------------------------------------
  const std::vector<Word> w_cells = machine_weights(graph);
  const Pint W(ctx, w_cells);
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Word d = static_cast<Word>(destination);

  const Pbool row_is_d = (ROW == d);
  const Pbool on_diagonal = (ROW == COL);
  const Pbool row_end = (COL == static_cast<Word>(n - 1));  // min() cluster anchor

  Pint SOW(ctx, machine.field().infinity());
  Pint PTN(ctx, d);

  // One broadcast issue point for both schemes.
  const auto bcast = [&](const Pint& value, Direction dir, const Pbool& open) {
    return detail::scheme_broadcast(value, dir, open, options.broadcast_scheme);
  };

  // Step 1 — initialization (paper statements 4..7): the d-th row gets the
  // 1-edge path costs and pointers, SOW[d][i] = w_id.
  //
  // ERRATUM: the paper's listing writes `SOW = W` under ROW == d, which
  // loads w_di — the edges *leaving* d — while the paper's own Step-1 text
  // says SOW_id "is initialized with the weight associated to the link
  // from vertex i to vertex d", i.e. COLUMN d of W. The text is the
  // version consistent with the Step-2 update (PE (i,j) = SOW_jd + w_ij),
  // so we implement it: column d is transposed into row d with two O(1)
  // bus cycles — a row broadcast from column d puts w_id on the whole of
  // row i (in particular on the diagonal), and a column broadcast from
  // the diagonal delivers it to row d.
  // The element (d,d) is written explicitly (it is 0, the empty path)
  // rather than through the diagonal broadcast: under the two-sided
  // scheme a diagonal driver never hears itself, and under the ring
  // scheme the broadcast would deliver the same 0 anyway.
  auto init_span = std::make_optional(obs::open_span(observer, "init", &machine));
  const Pbool col_is_d = (COL == d);
  const Pint w_into_d = bcast(W, Direction::East, col_is_d);
  const Pint zero(ctx, 0);
  ppc::where(ctx, row_is_d, [&] {
    PTN = Pint(ctx, d);
    ppc::where(ctx, !on_diagonal, [&] {
      SOW = bcast(w_into_d, Direction::South, on_diagonal);
    });
    ppc::where(ctx, on_diagonal, [&] { SOW = zero; });
  });

  // MIN_SOW starts as a copy of SOW so the never-recomputed diagonal
  // element (d,d) feeds its own unchanged value back in statement 16.
  Pint MIN_SOW(SOW);
  Pint OLD_SOW(ctx, 0);

  const sim::StepCounter after_init = machine.steps();
  init_span.reset();

  Result result;
  result.init_steps = after_init.since(at_entry);

  // Step 2 — relaxation loop (paper statements 8..20).
  auto relax_span = std::make_optional(obs::open_span(observer, "relax", &machine));
  for (;;) {
    if (result.iterations >= iteration_cap) {
      // The DP is monotone, so exhausting the cap means corrupted state
      // (injected faults, or a caller-supplied cap below the true path
      // length). Report it instead of returning partial SOW/PTN silently.
      result.outcome = SolveOutcome::NonConverged;
      const sim::FaultEvent event{sim::FaultEventKind::NonConvergence,
                                  sim::StepCategory::Alu, Direction::North, destination,
                                  destination, result.iterations};
      machine.report_fault(event);
      break;
    }
    const sim::StepCounter before_iteration = machine.steps();
    PPA_SPAN(observer, "relax_iter", &machine,
             static_cast<std::int64_t>(result.iterations));

    ppc::where(ctx, !row_is_d, [&] {
      // 10..12 — the shared panel core (relax_core.hpp). Here the "panel"
      // is the whole matrix: the carrier is row d and the argmin indices
      // are the wired COL constants.
      detail::panel_candidates(W, row_is_d, options.broadcast_scheme, SOW);
      detail::panel_row_reduce(COL, row_end, variant, SOW, MIN_SOW, PTN);
    });

    Pbool changed(ctx, false);
    ppc::where(ctx, row_is_d, [&] {
      // 15..18: pull the new costs/pointers from the diagonal into row d.
      // (d,d) is excluded: its cost is pinned at 0 and its MIN_SOW was
      // never recomputed; under the two-sided scheme it would also read
      // its own floating injection.
      ppc::where(ctx, !on_diagonal, [&] {
        OLD_SOW = SOW;
        SOW = bcast(MIN_SOW, Direction::South, on_diagonal);
        changed = (SOW != OLD_SOW);
        ppc::where(ctx, changed, [&] {
          PTN = bcast(PTN, Direction::South, on_diagonal);
        });
      });
    });

    ++result.iterations;
    // changed.count() is a free host read (it never charges SIMD steps),
    // so convergence telemetry rides the OR the loop test needs anyway.
    if (options.record_iterations || observer != nullptr) {
      const std::size_t active = changed.count();
      if (options.record_iterations) {
        result.iteration_trace.push_back(
            IterationRecord{active, machine.steps().since(before_iteration)});
      }
      if (observer != nullptr) {
        observer->record_iteration(static_cast<std::int64_t>(destination),
                                   result.iterations, active);
      }
    }

    // 20: while (at least one SOW in row d has changed) — the controller's
    // global-OR response line.
    if (!ppc::any(changed)) break;
  }
  relax_span.reset();

  result.total_steps = machine.steps().since(at_entry);

  // Unload row d (controller I/O; not charged as SIMD steps).
  {
    PPA_SPAN(observer, "unload", &machine);
    result.solution.destination = destination;
    result.solution.cost.resize(n);
    result.solution.next.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      result.solution.cost[i] = SOW.at(destination, i);
      result.solution.next[i] = static_cast<graph::Vertex>(PTN.at(destination, i));
    }
  }

  // Fault harvest, outcome policy, solver counters (shared with the tiled
  // driver — relax_core.hpp).
  result.masking = machine.masking_stats().since(masking_at_entry);
  detail::record_plan_cache_delta(machine, plans_at_entry, observer);
  detail::record_throughput_delta(machine, throughput_at_entry, observer);
  detail::finalize_result(machine, graph, destination, options, faults_at_entry, result);
  return result;
}

namespace {

/// True when the outcome warrants another attempt on the oracle.
bool retriable(SolveOutcome outcome) {
  return outcome == SolveOutcome::VerificationFailed ||
         outcome == SolveOutcome::NonConverged || outcome == SolveOutcome::HardwareFault;
}

/// One attempt; converts a ContractError on a faulty machine into a
/// HardwareFault result (an injected fault can drive the program into
/// states the machine contracts reject, e.g. an undriven value reaching a
/// primitive that requires full driven-ness in unchecked mode).
Result attempt(sim::Machine& machine, const graph::WeightMatrix& graph,
               graph::Vertex destination, const Options& options) {
  const std::size_t faults_at_entry = machine.fault_count();
  try {
    return run_minimum_cost_path(machine, graph, destination, options);
  } catch (const util::ContractError&) {
    if (!machine.has_faults()) throw;
    Result result;
    result.outcome = SolveOutcome::HardwareFault;
    result.solution.destination = destination;
    result.solution.cost.assign(graph.size(), graph.infinity());
    result.solution.next.assign(graph.size(), destination);
    const std::vector<sim::FaultEvent>& log = machine.fault_events();
    for (std::size_t i = faults_at_entry; i < log.size(); ++i) {
      result.fault_events.push_back(log[i]);
    }
    if (result.fault_events.empty()) {
      // The abort itself is the diagnostic: an undriven consume tripped a
      // contract before checked mode could record anything.
      result.fault_events.push_back(sim::FaultEvent{sim::FaultEventKind::UndrivenRead,
                                                    sim::StepCategory::Alu,
                                                    Direction::North, 0, 0, 1});
    }
    return result;
  }
}

}  // namespace

Result solve_with_recovery(sim::Machine& machine, std::unique_ptr<sim::Machine>& oracle,
                           const graph::WeightMatrix& graph, graph::Vertex destination,
                           const Options& options) {
  Result result = attempt(machine, graph, destination, options);
  std::vector<sim::FaultEvent> events = std::move(result.fault_events);
  sim::StepCounter spent = result.total_steps;
  sim::MaskingStats masked = result.masking;
  std::size_t attempts = 1;

  while (retry_allowed(options.recovery) && retriable(result.outcome) &&
         attempts <= options.max_retries) {
    if (!oracle) {
      sim::MachineConfig config;
      // Same geometry as the failed machine: a tiled run retries tiled,
      // so the recovery path exercises the same panel schedule.
      config.n = machine.config().n;
      config.bits = graph.field().bits();
      config.topology = machine.config().topology;
      config.backend = sim::ExecBackend::Words;  // the fault-free oracle
      oracle = std::make_unique<sim::Machine>(config);
    }
    if (options.observer != nullptr) {
      options.observer->metrics().counter(obs::metric::kSolverRetries).add(1);
    }
    PPA_SPAN(options.observer, "retry", oracle.get(),
             static_cast<std::int64_t>(attempts));
    result = run_minimum_cost_path(*oracle, graph, destination, options);
    ++attempts;
    events.insert(events.end(), result.fault_events.begin(), result.fault_events.end());
    spent.merge(result.total_steps);
    masked.merge(result.masking);
  }

  if (attempts > 1 && result.outcome == SolveOutcome::Verified &&
      options.observer != nullptr) {
    // The retry loop turned a failed row into a verified one.
    options.observer->metrics().counter(obs::metric::kSolverRecoveredRows).add(1);
  }
  result.fault_events = std::move(events);
  result.total_steps = spent;
  result.attempts = attempts;
  result.masking = masked;
  return result;
}

Result solve(const graph::WeightMatrix& graph, graph::Vertex destination,
             const Options& options) {
  sim::MachineConfig config;
  config.n = effective_array_side(options, graph.size());
  config.bits = graph.field().bits();
  config.backend = options.backend;
  config.checked = options.checked || !options.faults.empty();
  config.masking = masking_of(options.recovery);
  sim::Machine machine(config);
  if (!options.faults.empty()) machine.inject_faults(options.faults);
  std::unique_ptr<sim::Machine> oracle;
  return solve_with_recovery(machine, oracle, graph, destination, options);
}

SourceResult solve_from(const graph::WeightMatrix& graph, graph::Vertex source,
                        const Options& options) {
  const Result toward = solve(graph.transposed(), source, options);
  SourceResult result;
  result.source = source;
  result.infinity = graph.infinity();
  result.cost = toward.solution.cost;
  // In g^T the "next hop toward source" of vertex i is, in g, the vertex
  // that precedes i on the source -> i path.
  result.prev = toward.solution.next;
  result.iterations = toward.iterations;
  result.total_steps = toward.total_steps;
  return result;
}

std::optional<std::vector<graph::Vertex>> extract_path_from(const SourceResult& result,
                                                            graph::Vertex target) {
  const std::size_t n = result.cost.size();
  PPA_REQUIRE(target < n, "target out of range");
  if (result.cost[target] == result.infinity) return std::nullopt;
  graph::McpSolution as_solution;
  as_solution.destination = result.source;
  as_solution.cost = result.cost;
  as_solution.next = result.prev;
  auto reversed = graph::extract_path(as_solution, target);
  if (!reversed) return std::nullopt;
  std::vector<graph::Vertex> path(reversed->rbegin(), reversed->rend());
  return path;
}

}  // namespace ppa::mcp
