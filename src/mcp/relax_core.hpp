// The panel-parameterized relaxation core shared by the full-array solver
// (mcp.cpp) and the tiled virtualization driver (tiled.cpp).
//
// One relaxation visit of a panel is the paper's statements 10..12 with
// the geometry generalized: the carrier row's SOW fragment is column-
// broadcast over the panel, added to the resident weight panel, and each
// panel row is reduced to its minimum cost and the smallest column index
// attaining it. On the full array the panel IS the whole matrix and the
// carrier row is row d; on a p x p physical machine sweeping an n-vertex
// graph the carrier is machine row 0 and `index` carries the *global*
// column indices of the panel (COL + panel base), so the tie-break to the
// smallest next-hop index survives virtualization unchanged.
//
// Both functions issue instructions under the caller's ambient where-mask
// and nothing else — the callers own all masking, which is what keeps the
// full-array instruction stream bit-identical to the pre-extraction
// solver (tests/mcp_step_regression_test.cpp pins the step counts).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mcp/mcp.hpp"
#include "ppc/parallel.hpp"

namespace ppa::mcp::detail {

/// Row minimum / argmin dispatch on the configured variant.
[[nodiscard]] ppc::Pint row_min(MinVariant variant, const ppc::Pint& sow,
                                const ppc::Pbool& row_end);
[[nodiscard]] ppc::Pint row_argmin(MinVariant variant, const ppc::Pint& index,
                                   const ppc::Pbool& row_end, const ppc::Pbool& is_min);

/// Scheme-dispatched column/row broadcast (one issue point for both
/// schemes, like the lambda the full solver used to carry around).
[[nodiscard]] ppc::Pint scheme_broadcast(const ppc::Pint& value, sim::Direction dir,
                                         const ppc::Pbool& open, BroadcastScheme scheme);

/// Statement 10: sow = broadcast(sow, SOUTH, carrier_row) + W.
/// PE (i,j) of the panel then holds w_ij + SOW[carrier][j]. The store is
/// masked by the ambient mask; under the two-sided scheme the carrier row
/// never hears its own injection, so the caller's mask must exclude it.
void panel_candidates(const ppc::Pint& W, const ppc::Pbool& carrier_row,
                      BroadcastScheme scheme, ppc::Pint& sow);

/// Statements 11..12: min_sow = min(sow, WEST, row_end) — the row minimum,
/// available in every PE of the row — and ptn = selected_min(index, ...)
/// — the smallest index attaining it. Stores obey the ambient mask.
void panel_row_reduce(const ppc::Pint& index, const ppc::Pbool& row_end, MinVariant variant,
                      const ppc::Pint& sow, ppc::Pint& min_sow, ppc::Pint& ptn);

/// Per-column-block activity flags for the active-panel schedule
/// (docs/tiling.md "Active panels"). A block is dirty when its slice of
/// the row-d state changed in the previous iteration; every block starts
/// dirty (iteration 1 has no previous information). Under Jacobi order a
/// panel's partial result depends only on the static weight panel and the
/// SOW fragment of its COLUMN block, so a visit whose column block is
/// clean can be skipped and its cached readback replayed — exact, not
/// heuristic. One instance per solve lane (batch members each carry their
/// own).
class DirtyBlocks {
 public:
  explicit DirtyBlocks(std::size_t blocks) : dirty_(blocks, 1) {}

  [[nodiscard]] bool dirty(std::size_t bj) const { return dirty_[bj] != 0; }
  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint8_t f : dirty_) c += f;
    return c;
  }
  /// Feeds the next iteration from this iteration's per-block change
  /// counts (the PR 9 convergence-telemetry vector).
  void update(const std::vector<std::uint64_t>& block_changes) {
    for (std::size_t b = 0; b < dirty_.size(); ++b) {
      dirty_[b] = block_changes[b] != 0 ? std::uint8_t{1} : std::uint8_t{0};
    }
  }

 private:
  std::vector<std::uint8_t> dirty_;
};

/// Double-buffered PanelIo accounting for the virtualized sweeps. A
/// visited panel's load beats can overlap the PREVIOUS visited panel's
/// relax sweep (the fragments all come from last iteration's state under
/// Jacobi order, so the controller knows them at sweep start): the first
/// load of each sweep pays full price, every later one is charged only
/// the beats the overlap window could not hide. The window is the
/// previous visited panel's relax step count with the Masking category
/// excluded — masking trials are bus-level redundancy, and excluding them
/// keeps the accounting identical across backends and recovery policies
/// (ECC masking bills bit-plane-only steps). `saved()` accumulates every
/// avoided beat — skipped visits included via skip() — so charged PanelIo
/// plus saved() equals the dense schedule's total exactly.
class PanelIoLedger {
 public:
  PanelIoLedger(sim::Machine& machine, bool overlap) : machine_(machine), overlap_(overlap) {}

  /// Resets the overlap window; the next load pays full price (a prefetch
  /// cannot cross the iteration boundary — the fragment values depend on
  /// the convergence update).
  void begin_sweep() { window_ = 0; }

  /// Charges `rows` PanelIo minus the part hidden under the previous
  /// visited panel's relax sweep.
  void load(std::uint64_t rows) {
    const std::uint64_t hidden = overlap_ ? std::min(rows, window_) : 0;
    if (rows > hidden) machine_.charge_panel_io(rows - hidden);
    saved_ += hidden;
  }

  /// Brackets a panel's relax phase to measure the next overlap window.
  void relax_begin() { before_relax_ = machine_.steps(); }
  void relax_end() {
    // PanelIo beats inside the bracket (the batched sweep's member
    // fragments/readbacks) keep the I/O channel busy and cannot hide a
    // prefetch, so they never widen the window.
    const sim::StepCounter delta = machine_.steps().since(before_relax_);
    window_ = delta.total() - delta.count(sim::StepCategory::Masking) -
              delta.count(sim::StepCategory::PanelIo);
  }

  /// Plain charge (result readbacks are never overlapped).
  void unload(std::uint64_t rows) { machine_.charge_panel_io(rows); }

  /// Accounts a skipped visit's beats as saved without charging them.
  void skip(std::uint64_t rows) { saved_ += rows; }

  [[nodiscard]] std::uint64_t saved() const { return saved_; }

 private:
  sim::Machine& machine_;
  bool overlap_;
  std::uint64_t window_ = 0;
  std::uint64_t saved_ = 0;
  sim::StepCounter before_relax_;
};

/// Attaches the observer as the machine's trace sink for the duration of a
/// call — only when the machine has no sink of its own (a caller-attached
/// RecordingTrace keeps priority) — and restores the previous sink on any
/// exit path, including exceptions.
class ScopedSink {
 public:
  ScopedSink(sim::Machine& machine, obs::Collector* observer);
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;
  ~ScopedSink();

 private:
  sim::Machine& machine_;
  sim::TraceSink* previous_;
};

/// Host-side view of weight panel (base_r, base_c) on a p x p machine:
/// local cell (r, c) holds the global w(base_r + r, base_c + c) with the
/// diagonal forced to 0 (the j == i term of the row minimum then preserves
/// SOW_id, exactly like the full-array load) and padding rows/columns at
/// infinity (they can never win a minimum whose candidates include the
/// diagonal term). Shared by the tiled and batched sweeps.
[[nodiscard]] std::vector<sim::Word> panel_weights(const graph::WeightMatrix& g,
                                                   std::size_t p, std::size_t base_r,
                                                   std::size_t base_c);

/// Records the machine's broadcast-plan-cache hit/miss delta since `entry`
/// as the observer's bus.plan_cache.* counters (no-op without an
/// observer). Solvers snapshot at entry and call this once on exit, so the
/// merged all-pairs metrics stay worker-count independent.
void record_plan_cache_delta(const sim::Machine& machine,
                             sim::Machine::PlanCacheStats entry,
                             obs::Collector* observer);

/// Entry snapshot for record_throughput_delta: the machine's cumulative
/// kernel-sweep billing plus (bit-plane backend with workers) the host
/// pool's per-lane busy seconds.
struct ThroughputProbe {
  sim::plane_kernels::SweepStats sweeps;
  std::vector<double> pool_busy;
};

[[nodiscard]] ThroughputProbe probe_throughput(sim::Machine& machine);

/// Records the delta since `entry` as the observer's simd.sweep.* counters
/// (deterministic: billed per sweep on the controller thread, so pool-size
/// and min-words independent) and the pool.* gauges (timing; gauge merge
/// keeps the worst case seen). No-op without an observer.
void record_throughput_delta(sim::Machine& machine, const ThroughputProbe& entry,
                             obs::Collector* observer);

/// The solver epilogue both geometries share: harvests the machine's
/// checked-execution fault-event delta, settles Result::outcome
/// (non-convergence dominates, then the host certificate — which is
/// array-agnostic — then machine diagnostics) and bumps the observer's
/// solver counters. Must run while the caller's "solve" span is open.
void finalize_result(sim::Machine& machine, const graph::WeightMatrix& graph,
                     graph::Vertex destination, const Options& options,
                     std::size_t faults_at_entry, Result& result);

}  // namespace ppa::mcp::detail
