// Reachability and transitive closure on the PPA.
//
// The paper cites Wang & Chen's "Constant Time Algorithms for the
// Transitive Closure ... on Processor Arrays with Reconfigurable Bus
// System" [6] as the stronger-model comparison point. On the row/column-
// only PPA the same problem is the MCP dynamic program over the BOOLEAN
// semiring (OR-AND instead of min-plus) — and the row reduction collapses
// from the O(h) bit-serial minimum to a SINGLE wired-OR bus cycle, so one
// relaxation iteration costs O(1) SIMD steps and single-destination
// reachability costs O(p) total:
//
//   R[d][j]  <- "edge j -> d exists"            (init, like SOW)
//   iterate: cand(i,j) = hasEdge(i,j) AND R_j   (column broadcast)
//            R_i <- OR_j cand(i,j)              (ONE bus_or cycle)
//   until row d stops changing.
//
// The n-destination loop gives the full transitive closure in O(n·p)
// steps on n^2 PEs — weaker than PARBS's O(1) on n^3 PEs, which is
// exactly the "less powerful but hardware implementable" trade-off the
// paper's concluding remarks describe.
#pragma once

#include <vector>

#include "graph/weight_matrix.hpp"
#include "sim/machine.hpp"

namespace ppa::mcp {

struct ReachabilityResult {
  /// reachable[i] == true iff a directed path i -> destination exists
  /// (the destination reaches itself).
  std::vector<bool> reachable;
  graph::Vertex destination = 0;
  std::size_t iterations = 0;
  sim::StepCounter init_steps;   // load + row-d initialization
  sim::StepCounter total_steps;

  /// Virtualized-run accounting (zero on the full-array path). A tiled
  /// boolean sweep visits ceil(n/p)^2 adjacency panels per iteration at
  /// p+2 PanelIo beats each (p panel rows + 1 reach fragment + 1 column
  /// readback); the active-panel schedule skips panels whose column block
  /// saw no reach change last iteration and double-buffers visited loads,
  /// so charged PanelIo + panel_io_saved == iterations * blocks^2 * (p+2)
  /// exactly (tests/mcp_closure_test.cpp pins both sides).
  std::uint64_t panels_visited = 0;
  std::uint64_t panels_skipped = 0;
  std::uint64_t panel_io_saved = 0;
};

/// Knobs for the one-shot closure drivers. The boolean-semiring DP is the
/// bit-plane backend's best case: every register it touches is a Pbool,
/// i.e. ONE plane, so a plane-backend run sweeps a single 64-PE-per-word
/// plane per instruction instead of h of them — the per-step host cost is
/// h-independent. Results, iteration counts and step counters are pinned
/// bit-identical across backends (tests/mcp_closure_backend_test.cpp).
struct ClosureOptions {
  sim::ExecBackend backend = sim::ExecBackend::Words;
  /// Physical array side p for the machines the one-shot drivers build.
  /// 0 (the default) sizes the machine at the vertex count — the dense
  /// path, which stays the oracle. 0 < p < n sweeps the boolean DP in
  /// ceil(n/p)^2 adjacency panels per iteration on a p x p machine, with
  /// the reach row held by the controller between visits. Reachable sets
  /// and iteration counts are bit-identical to the dense run on both
  /// backends; only the step profile differs (panel reloads are
  /// StepCategory::PanelIo). Values >= n are clamped.
  std::size_t array_side = 0;
  /// Activity-driven panel scheduling for the tiled sweep (docs/tiling.md
  /// "Active panels"): reach growth is monotone, so a column block whose
  /// bits did not change last iteration cannot change any panel result —
  /// its visits replay the cached readback. Exact, like the MCP schedule;
  /// false restores the dense visit order. Ignored by the full-array path.
  bool active_panels = true;
};

/// Single-destination reachability on `machine`. Same preconditions as
/// minimum_cost_path (the boolean DP still addresses the array with its
/// h-bit words). Dispatches on the machine geometry like
/// run_minimum_cost_path: a machine smaller than the graph runs the tiled
/// boolean sweep; `options` only contributes the active-panel knob there
/// (backend and geometry are the caller's machine's).
[[nodiscard]] ReachabilityResult reachability(sim::Machine& machine,
                                              const graph::WeightMatrix& graph,
                                              graph::Vertex destination,
                                              const ClosureOptions& options = {});

/// Convenience one-shot with a fresh machine on the chosen backend.
[[nodiscard]] ReachabilityResult solve_reachability(const graph::WeightMatrix& graph,
                                                    graph::Vertex destination,
                                                    const ClosureOptions& options = {});

struct ClosureResult {
  std::size_t n = 0;
  /// Row-major: closed[i*n + j] == true iff a path i -> j exists
  /// (reflexive: the diagonal is true).
  std::vector<bool> closed;
  std::size_t total_iterations = 0;
  sim::StepCounter total_steps;

  [[nodiscard]] bool at(graph::Vertex i, graph::Vertex j) const { return closed[i * n + j]; }
};

/// Full transitive closure: n reachability runs on one reused machine.
[[nodiscard]] ClosureResult transitive_closure(const graph::WeightMatrix& graph,
                                               const ClosureOptions& options = {});

}  // namespace ppa::mcp
