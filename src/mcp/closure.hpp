// Reachability and transitive closure on the PPA.
//
// The paper cites Wang & Chen's "Constant Time Algorithms for the
// Transitive Closure ... on Processor Arrays with Reconfigurable Bus
// System" [6] as the stronger-model comparison point. On the row/column-
// only PPA the same problem is the MCP dynamic program over the BOOLEAN
// semiring (OR-AND instead of min-plus) — and the row reduction collapses
// from the O(h) bit-serial minimum to a SINGLE wired-OR bus cycle, so one
// relaxation iteration costs O(1) SIMD steps and single-destination
// reachability costs O(p) total:
//
//   R[d][j]  <- "edge j -> d exists"            (init, like SOW)
//   iterate: cand(i,j) = hasEdge(i,j) AND R_j   (column broadcast)
//            R_i <- OR_j cand(i,j)              (ONE bus_or cycle)
//   until row d stops changing.
//
// The n-destination loop gives the full transitive closure in O(n·p)
// steps on n^2 PEs — weaker than PARBS's O(1) on n^3 PEs, which is
// exactly the "less powerful but hardware implementable" trade-off the
// paper's concluding remarks describe.
#pragma once

#include <vector>

#include "graph/weight_matrix.hpp"
#include "sim/machine.hpp"

namespace ppa::mcp {

struct ReachabilityResult {
  /// reachable[i] == true iff a directed path i -> destination exists
  /// (the destination reaches itself).
  std::vector<bool> reachable;
  graph::Vertex destination = 0;
  std::size_t iterations = 0;
  sim::StepCounter init_steps;   // load + row-d initialization
  sim::StepCounter total_steps;
};

/// Single-destination reachability on `machine`. Same preconditions as
/// minimum_cost_path (the boolean DP still addresses the array with its
/// h-bit words).
[[nodiscard]] ReachabilityResult reachability(sim::Machine& machine,
                                              const graph::WeightMatrix& graph,
                                              graph::Vertex destination);

/// Knobs for the one-shot closure drivers. The boolean-semiring DP is the
/// bit-plane backend's best case: every register it touches is a Pbool,
/// i.e. ONE plane, so a plane-backend run sweeps a single 64-PE-per-word
/// plane per instruction instead of h of them — the per-step host cost is
/// h-independent. Results, iteration counts and step counters are pinned
/// bit-identical across backends (tests/mcp_closure_backend_test.cpp).
struct ClosureOptions {
  sim::ExecBackend backend = sim::ExecBackend::Words;
};

/// Convenience one-shot with a fresh machine on the chosen backend.
[[nodiscard]] ReachabilityResult solve_reachability(const graph::WeightMatrix& graph,
                                                    graph::Vertex destination,
                                                    const ClosureOptions& options = {});

struct ClosureResult {
  std::size_t n = 0;
  /// Row-major: closed[i*n + j] == true iff a path i -> j exists
  /// (reflexive: the diagonal is true).
  std::vector<bool> closed;
  std::size_t total_iterations = 0;
  sim::StepCounter total_steps;

  [[nodiscard]] bool at(graph::Vertex i, graph::Vertex j) const { return closed[i * n + j]; }
};

/// Full transitive closure: n reachability runs on one reused machine.
[[nodiscard]] ClosureResult transitive_closure(const graph::WeightMatrix& graph,
                                               const ClosureOptions& options = {});

}  // namespace ppa::mcp
