#include "mcp/verify.hpp"

#include <sstream>

namespace ppa::mcp {

namespace {

CertificateReport fail(CertificateReport report, std::string detail) {
  report.ok = false;
  report.detail = std::move(detail);
  return report;
}

}  // namespace

CertificateReport check_certificate(const graph::WeightMatrix& graph,
                                    const graph::McpSolution& solution) {
  CertificateReport report;
  const std::size_t n = graph.size();
  const util::HField& field = graph.field();
  const graph::Weight inf = graph.infinity();
  const graph::Vertex d = solution.destination;

  // (1) structure
  if (solution.cost.size() != n || solution.next.size() != n) {
    return fail(std::move(report), "solution arrays do not match the vertex count");
  }
  if (d >= n) return fail(std::move(report), "destination out of range");
  if (solution.cost[d] != 0) {
    std::ostringstream os;
    os << "cost[" << d << "] = " << solution.cost[d] << ", expected 0 (the empty path)";
    return fail(std::move(report), os.str());
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!field.representable(solution.cost[i])) {
      std::ostringstream os;
      os << "cost[" << i << "] = " << solution.cost[i] << " is not an h-bit field value";
      return fail(std::move(report), os.str());
    }
    if (solution.cost[i] != inf && solution.next[i] >= n) {
      std::ostringstream os;
      os << "next[" << i << "] = " << solution.next[i] << " out of range";
      return fail(std::move(report), os.str());
    }
  }

  // (2) every finite cost is achieved by the reconstructed PTN path, with
  // exact saturating telescoping at every hop.
  for (std::size_t i = 0; i < n; ++i) {
    if (i == d || solution.cost[i] == inf) continue;
    graph::Vertex v = i;
    std::size_t hops = 0;
    while (v != d) {
      if (++hops >= n) {
        std::ostringstream os;
        os << "PTN path from " << i << " does not reach " << d << " within " << n - 1
           << " hops (pointer cycle)";
        return fail(std::move(report), os.str());
      }
      const graph::Vertex u = solution.next[v];
      if (solution.cost[u] == inf) {
        std::ostringstream os;
        os << "PTN path from " << i << " enters unreachable vertex " << u;
        return fail(std::move(report), os.str());
      }
      if (!graph.has_edge(v, u)) {
        std::ostringstream os;
        os << "PTN hop " << v << " -> " << u << " is not an edge";
        return fail(std::move(report), os.str());
      }
      const graph::Weight telescoped = field.add(graph.at(v, u), solution.cost[u]);
      if (solution.cost[v] != telescoped) {
        std::ostringstream os;
        os << "SOW does not telescope at " << v << " -> " << u << ": cost[" << v
           << "] = " << solution.cost[v] << " but w + cost[" << u << "] = " << telescoped;
        return fail(std::move(report), os.str());
      }
      v = u;
    }
    ++report.paths_checked;
  }

  // (3) no cost is improvable by any single relaxation.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !graph.has_edge(i, j)) continue;
      ++report.relaxations_checked;
      const graph::Weight through = field.add(graph.at(i, j), solution.cost[j]);
      if (solution.cost[i] > through) {
        std::ostringstream os;
        os << "cost[" << i << "] = " << solution.cost[i] << " is improvable via edge " << i
           << " -> " << j << " to " << through;
        return fail(std::move(report), os.str());
      }
    }
  }
  return report;
}

}  // namespace ppa::mcp
