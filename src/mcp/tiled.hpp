// Virtualized (tiled) PPA: an n-vertex graph on a p x p physical array.
//
// The paper maps the weight matrix 1:1 onto the array, so the largest
// solvable graph is the largest machine; this layer removes the coupling.
// A p x p machine (p <= n) sweeps the n x n weight matrix in
// ceil(n/p) x ceil(n/p) panels per relaxation iteration:
//
//   * the current row-d state (SOW / PTN) lives with the HOST controller
//     as an n-vector between panels;
//   * visiting panel (bi, bj) loads the p x p weight panel and the
//     bj-th SOW fragment into the array (counted PanelIo steps — see
//     Machine::charge_panel_io and docs/tiling.md), runs the shared
//     relaxation core (relax_core.hpp: column broadcast + saturating add
//     + bit-serial row min/argmin over GLOBAL column indices), and reads
//     back one min/argmin pair per panel row;
//   * a host-side carry folds each panel row's partial minimum into the
//     running row minimum with a strict `<`, so the earliest column block
//     wins ties — combined with the in-panel smallest-index argmin this
//     preserves the paper's tie-break to the smallest next-hop index
//     exactly;
//   * row-d updates are buffered and applied only after the full sweep
//     (Jacobi order, like the array), so the iteration count, every
//     iterate and the final solution are bit-identical to the full-array
//     run — tests/mcp_tiled_test.cpp pins this on both backends.
//
// Step model: the relaxation instructions are charged exactly like the
// full array's (just on p-wide rows); the virtualization overhead is
// charged separately as StepCategory::PanelIo, so E2/E4-style step curves
// can show it honestly.
#pragma once

#include "mcp/mcp.hpp"

namespace ppa::mcp {

/// The physical array side the convenience entry points build for an
/// n-vertex graph: options.array_side clamped to [1, n], with 0 mapping
/// to n (the full-array path).
[[nodiscard]] std::size_t effective_array_side(const Options& options, std::size_t n);

/// The paper's DP on a machine SMALLER than the graph: machine.n() <= n,
/// sweeping panels as described above. Preconditions: matching h-bit
/// field, destination < n, and n - 1 representable in the field (PTN
/// carries global column indices). The machine's step counter keeps
/// accumulating; panel reloads are charged as StepCategory::PanelIo.
[[nodiscard]] Result tiled_minimum_cost_path(sim::Machine& machine,
                                             const graph::WeightMatrix& graph,
                                             graph::Vertex destination,
                                             const Options& options = {});

/// Geometry dispatch used by the solve/retry entry points: the full-array
/// solver when machine.n() == graph.size(), the tiled sweep otherwise.
[[nodiscard]] Result run_minimum_cost_path(sim::Machine& machine,
                                           const graph::WeightMatrix& graph,
                                           graph::Vertex destination,
                                           const Options& options = {});

}  // namespace ppa::mcp
