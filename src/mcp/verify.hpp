// Host-side certificate checker for the MCP solver.
//
// The solver unloads row d of SOW/PTN and, until now, trusted it blindly.
// But (cost, next) is a *certificate* whose optimality can be confirmed on
// the host in O(n·t) time (t = longest reconstructed path) without re-solving:
//
//   1. cost[d] == 0 and every index is in range;
//   2. every finite cost[i] is ACHIEVED: chasing next from i reaches d in
//      at most n-1 hops, every hop is a real edge, and the costs telescope
//      exactly — cost[v] == w(v, next[v]) (+) cost[next[v]] in the
//      saturating h-bit field at every hop;
//   3. no cost is IMPROVABLE: for every edge (i, j),
//      cost[i] <= w(i, j) (+) cost[j].
//
// (2) gives cost[i] >= dist(i, d) (a real path attains it) and (3) with
// cost[d] == 0 telescopes along any path to give cost[i] <= dist(i, d), so
// together they certify exact optimality — including the infinite entries:
// a wrongly-infinite cost[i] on a vertex that can reach d at representable
// cost violates (3) on the first edge whose head has a finite cost.
//
// This is the detection half of the robustness layer (docs/robustness.md):
// fault injection corrupts runs, the certificate rejects the corrupted
// results, and mcp::solve retries on the fault-free oracle backend.
#pragma once

#include <cstddef>
#include <string>

#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"

namespace ppa::mcp {

struct CertificateReport {
  bool ok = true;
  std::string detail;  // first violation, human-readable; empty when ok
  std::size_t paths_checked = 0;        // finite-cost vertices reconstructed
  std::size_t relaxations_checked = 0;  // edges scanned by check (3)

  explicit operator bool() const noexcept { return ok; }
};

/// Certifies `solution` as the exact single-destination answer for `graph`.
/// Requires nothing from the solver — pure host arithmetic in the graph's
/// saturating field.
[[nodiscard]] CertificateReport check_certificate(const graph::WeightMatrix& graph,
                                                  const graph::McpSolution& solution);

}  // namespace ppa::mcp
