// Wall-clock timing for the throughput experiments (E6).
#pragma once

#include <chrono>

namespace ppa::util {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppa::util
