#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace ppa::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{help, default_value, /*is_bool=*/false};
  return *this;
}

CliParser& CliParser::bool_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, "false", /*is_bool=*/true};
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto spec = specs_.find(name);
    if (spec == specs_.end()) {
      std::cerr << "unknown flag --" << name << "\n" << usage();
      return false;
    }
    if (spec->second.is_bool) {
      values_[name] = inline_value.value_or("true");
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else if (i + 1 < argc) {
      values_[name] = argv[++i];
    } else {
      std::cerr << "flag --" << name << " needs a value\n" << usage();
      return false;
    }
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) > 0 ||
         (specs_.count(name) > 0 && !specs_.at(name).default_value.empty());
}

std::string CliParser::get_string(const std::string& name) const {
  PPA_REQUIRE(specs_.count(name) > 0, "flag was never registered: " + name);
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  return specs_.at(name).default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string raw = get_string(name);
  PPA_REQUIRE(!raw.empty(), "flag --" + name + " has no value");
  char* end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &end, 10);
  PPA_REQUIRE(end != nullptr && *end == '\0', "flag --" + name + " is not an integer: " + raw);
  return value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string raw = get_string(name);
  PPA_REQUIRE(!raw.empty(), "flag --" + name + " has no value");
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  PPA_REQUIRE(end != nullptr && *end == '\0', "flag --" + name + " is not a number: " + raw);
  return value;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string raw = get_string(name);
  return raw == "true" || raw == "1" || raw == "yes" || raw == "on";
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << program_name_ << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_bool) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.default_value.empty() && spec.default_value != "false") {
      os << " (default: " << spec.default_value << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ppa::util
