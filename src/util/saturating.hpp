// Saturating h-bit unsigned arithmetic — the PPA number world.
//
// The paper represents edge weights and path costs as h-bit integers where
// MAXINT = 2^h - 1 plays the role of +infinity ("if no edge exists from
// vertex i to vertex j, then w_ij = MAXINT, that is an infinite value").
// For the dynamic program to be sound inside that representation, addition
// must saturate: inf + w == inf, and any genuine cost that would exceed
// MAXINT is indistinguishable from "unreachable" — exactly as on the real
// machine. HField bundles the width with the operations so a width can
// never silently leak between machines configured differently.
#pragma once

#include <cstdint>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ppa::util {

/// Arithmetic over unsigned integers of `bits()` bits with MAXINT == +inf.
class HField {
 public:
  explicit constexpr HField(int bits) : bits_(bits) {
    PPA_REQUIRE(valid_word_bits(bits), "word width must be in [1, 32]");
  }

  [[nodiscard]] constexpr int bits() const noexcept { return bits_; }

  /// The saturation value, used as +infinity.
  [[nodiscard]] constexpr std::uint32_t infinity() const noexcept { return low_mask(bits_); }

  /// Largest representable *finite* value.
  [[nodiscard]] constexpr std::uint32_t max_finite() const noexcept { return infinity() - 1u; }

  [[nodiscard]] constexpr bool is_infinite(std::uint32_t x) const noexcept {
    return x == infinity();
  }

  /// True iff x fits in the field at all.
  [[nodiscard]] constexpr bool representable(std::uint64_t x) const noexcept {
    return x <= infinity();
  }

  /// Saturating addition: inf absorbs, and finite sums clamp to inf.
  [[nodiscard]] constexpr std::uint32_t add(std::uint32_t a, std::uint32_t b) const noexcept {
    const std::uint64_t wide = std::uint64_t{a} + std::uint64_t{b};
    const std::uint64_t inf = infinity();
    return static_cast<std::uint32_t>(wide >= inf ? inf : wide);
  }

  /// Clamp an arbitrary 64-bit value into the field (everything >= inf
  /// becomes inf).
  [[nodiscard]] constexpr std::uint32_t clamp(std::uint64_t x) const noexcept {
    const std::uint64_t inf = infinity();
    return static_cast<std::uint32_t>(x >= inf ? inf : x);
  }

  friend constexpr bool operator==(const HField&, const HField&) = default;

 private:
  int bits_;
};

}  // namespace ppa::util
