#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace ppa::util {

namespace {

double seconds_between(std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end) noexcept {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t worker_count) {
  busy_.assign(worker_count <= 1 ? 1 : worker_count + 1, 0.0);
  if (worker_count <= 1) return;  // inline mode
  jobs_.resize(worker_count);
  job_ready_.assign(worker_count, false);
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& thread : workers_) thread.join();
}

void ThreadPool::worker_main(std::size_t worker_index) {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || job_ready_[worker_index]; });
      if (stopping_ && !job_ready_[worker_index]) return;
      job = jobs_[worker_index];
      job_ready_[worker_index] = false;
    }
    const auto chunk_begin = std::chrono::steady_clock::now();
    try {
      if (job.begin < job.end) (*job.body)(job.begin, job.end);
    } catch (...) {
      const std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    const double chunk_seconds =
        seconds_between(chunk_begin, std::chrono::steady_clock::now());
    {
      const std::lock_guard lock(mutex_);
      busy_[worker_index + 1] += chunk_seconds;  // lane 0 is the caller
      PPA_ASSERT(pending_ > 0, "pool bookkeeping underflow");
      --pending_;
      if (pending_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t total, const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  if (workers_.empty()) {
    const auto inline_begin = std::chrono::steady_clock::now();
    body(0, total);
    busy_[0] += seconds_between(inline_begin, std::chrono::steady_clock::now());
    return;
  }

  const std::size_t lanes = workers_.size() + 1;  // workers + the caller
  const std::size_t chunk = (total + lanes - 1) / lanes;
  std::size_t caller_begin = 0;
  std::size_t caller_end = 0;
  {
    const std::lock_guard lock(mutex_);
    PPA_REQUIRE(pending_ == 0, "ThreadPool::parallel_for is not reentrant");
    first_error_ = nullptr;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::size_t begin = std::min(cursor, total);
      const std::size_t end = std::min(begin + chunk, total);
      jobs_[i] = Job{&body, begin, end};
      job_ready_[i] = true;
      ++pending_;
      cursor = end;
    }
    caller_begin = std::min(cursor, total);
    caller_end = total;
  }
  wake_.notify_all();

  std::exception_ptr caller_error;
  const auto caller_chunk_begin = std::chrono::steady_clock::now();
  try {
    if (caller_begin < caller_end) body(caller_begin, caller_end);
  } catch (...) {
    caller_error = std::current_exception();
  }
  const double caller_seconds =
      seconds_between(caller_chunk_begin, std::chrono::steady_clock::now());

  {
    std::unique_lock lock(mutex_);
    busy_[0] += caller_seconds;
    done_.wait(lock, [&] { return pending_ == 0; });
    if (!caller_error) caller_error = first_error_;
  }
  if (caller_error) std::rethrow_exception(caller_error);
}

std::vector<double> ThreadPool::busy_seconds() {
  const std::lock_guard lock(mutex_);
  return busy_;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace ppa::util
