// Minimal command-line flag parsing for the example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms plus
// positional arguments, with typed accessors and a generated usage string.
// Deliberately tiny: the examples only need a handful of options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ppa::util {

/// Declarative flag set with typed lookup.
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a flag. `default_value` empty string means "no default";
  /// boolean flags default to false.
  CliParser& flag(const std::string& name, const std::string& help,
                  const std::string& default_value = "");
  CliParser& bool_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on a
  /// malformed/unknown flag.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_bool = false;
  };

  std::string description_;
  std::string program_name_ = "program";
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ppa::util
