// Runtime contract checking for the PPA reproduction.
//
// Two severities:
//   PPA_REQUIRE(cond, msg)  — precondition on a public API; always on;
//                             throws ppa::util::ContractError.
//   PPA_ASSERT(cond, msg)   — internal invariant; compiled out when
//                             NDEBUG && PPA_NO_INTERNAL_ASSERTS.
//
// Simulator code favours checked failure over undefined behaviour: a SIMD
// machine model that silently reads an undriven bus would make every
// experiment downstream of it meaningless.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ppa::util {

/// Thrown when a public-API precondition is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal simulator invariant breaks (a bug in this repo,
/// not in the caller's usage).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown by parsers / loaders on malformed input data.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_contract(std::string_view expr, std::string_view file, int line,
                                       std::string_view msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

[[noreturn]] inline void fail_internal(std::string_view expr, std::string_view file, int line,
                                       std::string_view msg) {
  std::ostringstream os;
  os << "internal invariant broken: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace ppa::util

#define PPA_REQUIRE(cond, msg)                                                  \
  do {                                                                          \
    if (!(cond)) ::ppa::util::detail::fail_contract(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#if defined(NDEBUG) && defined(PPA_NO_INTERNAL_ASSERTS)
#define PPA_ASSERT(cond, msg) \
  do {                        \
  } while (false)
#else
#define PPA_ASSERT(cond, msg)                                                   \
  do {                                                                          \
    if (!(cond)) ::ppa::util::detail::fail_internal(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
#endif
