#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace ppa::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_io_mutex;

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "E";
    case LogLevel::Info: return "I";
    case LogLevel::Debug: return "D";
    case LogLevel::Quiet: break;
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > g_level.load() || level == LogLevel::Quiet) return;
  const std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%s %9.3fs] %s\n", level_tag(level), seconds_since_start(),
               message.c_str());
}

}  // namespace ppa::util
