// Fixed-size thread pool with a blocking parallel_for.
//
// The SIMD simulators apply the same operation to every PE; on the host we
// split the PE index range into contiguous chunks so results are
// deterministic regardless of thread count (each index writes only its own
// slot). A pool size of 0 or 1 degrades to a plain sequential loop with no
// thread machinery at all, which keeps the small-array experiments honest
// (no pool overhead pollutes the E4/E5 step measurements — those count SIMD
// steps, not wall time — and keeps E6's 1-thread baseline clean).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppa::util {

/// Reusable worker pool. Threads are started once and parked between calls;
/// parallel_for blocks until every chunk completed. Exceptions thrown by the
/// body are captured and rethrown on the calling thread (first one wins).
class ThreadPool {
 public:
  /// `worker_count` == 0 or 1 means: run everything inline on the caller.
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Applies `body(begin, end)` over [0, total) split into contiguous
  /// chunks, one chunk per worker (plus the caller's share). Blocks until
  /// done.
  void parallel_for(std::size_t total,
                    const std::function<void(std::size_t begin, std::size_t end)>& body);

  /// The machine-wide default pool (hardware_concurrency workers). Lazily
  /// constructed, never destroyed before exit.
  static ThreadPool& shared();

  /// Cumulative wall time each lane spent inside parallel_for bodies since
  /// construction (docs/observability.md). Lane 0 is the caller's share,
  /// lanes 1..worker_count the workers — the spread across lanes is the
  /// chunk-imbalance signal the utilization profiler reports. Inline mode
  /// (<= 1 worker) keeps a single lane-0 slot. Snapshot/delta only between
  /// parallel_for calls: every slot is written either by the caller or
  /// under mutex_ before the final pending_ handoff, so a post-join read
  /// is race-free.
  [[nodiscard]] std::vector<double> busy_seconds();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_main(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<Job> jobs_;         // one slot per worker
  std::vector<bool> job_ready_;   // guarded by mutex_
  std::vector<double> busy_;      // per-lane busy seconds; lane 0 = caller
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ppa::util
