// Plain-text and CSV table emission for the experiment harnesses.
//
// Every bench binary prints the same rows the paper's claims imply, in two
// formats: an aligned human-readable table on stdout and (optionally) CSV
// for downstream plotting. Keeping formatting here keeps the bench code
// about *what* is measured, not about column widths.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ppa::util {

/// One table cell: text, integer or floating point.
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned results table with a title and named columns.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; must match the column count.
  void add_row(std::vector<Cell> cells);

  /// Convenience for the common all-numeric row.
  void add_numeric_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders the aligned text form, e.g. for stdout.
  [[nodiscard]] std::string to_text() const;

  /// Renders RFC-4180-ish CSV (header row first).
  [[nodiscard]] std::string to_csv() const;

  /// Writes `to_text()` to the stream followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a double compactly (fixed for small magnitudes, scientific for
/// large), used by Table and by log lines that report measurements.
[[nodiscard]] std::string format_number(double value);

/// CSV-escapes a single field.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace ppa::util
