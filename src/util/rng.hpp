// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible across runs, platforms and host
// thread counts, so we ship our own small generators instead of relying on
// std::default_random_engine (unspecified) or std::uniform_int_distribution
// (implementation-defined sequences).
//
//   SplitMix64 — seeding / stateless hashing.
//   Xoshiro256StarStar — main generator (Blackman & Vigna), 2^256-1 period.
//
// Distribution helpers use rejection sampling (unbiased) and Lemire-style
// bounded generation for the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace ppa::util {

/// splitmix64 step; also usable as a mixing hash.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mixer for combining seeds with stream ids.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

/// xoshiro256** 1.0 — the repo's main PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64, as recommended
  /// by the xoshiro authors.
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  /// Derives an independent generator for a named parallel stream. Streams
  /// with distinct ids are statistically independent, so per-PE or per-test
  /// randomness does not depend on iteration order.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) const noexcept {
    Rng child(0);
    child.state_ = state_;
    // Perturb with the stream id, then scramble through a few outputs.
    child.state_[0] ^= mix64(stream_id + 1);
    child.state_[2] ^= mix64(~stream_id);
    for (int i = 0; i < 8; ++i) (void)child.next();
    return child;
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound) — modulo with rejection below the
  /// threshold 2^64 mod bound, which keeps the result exactly uniform.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    PPA_ASSERT(bound > 0, "Rng::below requires bound > 0");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t draw = next();
      if (draw >= threshold) return draw % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    PPA_ASSERT(lo <= hi, "Rng::between requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = (span == 0) ? next() : below(span);
    return lo + static_cast<std::int64_t>(draw);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  constexpr bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Produces `count` distinct values in [0, bound), in random order.
/// Reservoir-free: uses partial Fisher–Yates over an index vector.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t bound,
                                                    std::size_t count);

}  // namespace ppa::util
