// Lightweight leveled logging for the examples and experiment harnesses.
//
// Deliberately minimal: a global level, timestamps relative to process
// start, single-line records. Tests set the level to Quiet so assertion
// output stays readable.
#pragma once

#include <sstream>
#include <string>

namespace ppa::util {

enum class LogLevel : int { Quiet = 0, Error = 1, Info = 2, Debug = 3 };

/// Sets / reads the process-wide log threshold.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one record to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::Error); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::Debug); }

}  // namespace ppa::util
