#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace ppa::util {

namespace {

std::string cell_to_string(const Cell& cell) {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<std::int64_t>(&cell)) return std::to_string(*integer);
  return format_number(std::get<double>(cell));
}

}  // namespace

std::string format_number(double value) {
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  char buffer[64];
  const double magnitude = std::fabs(value);
  if (value == std::floor(value) && magnitude < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
  } else if (magnitude >= 1e7 || (magnitude > 0 && magnitude < 1e-3)) {
    std::snprintf(buffer, sizeof buffer, "%.4g", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.4f", value);
  }
  return buffer;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  PPA_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  PPA_REQUIRE(cells.size() == columns_.size(), "row width must match the column count");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values) {
  std::vector<Cell> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.emplace_back(v);
  add_row(std::move(cells));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  PPA_REQUIRE(row < rows_.size() && col < columns_.size(), "table index out of range");
  return rows_[row][col];
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(cell_to_string(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule_width += widths[c] + (c ? 2 : 0);
  os << std::string(rule_width, '-') << '\n';
  for (const auto& row : rendered) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cell_to_string(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text() << '\n'; }

}  // namespace ppa::util
