#include "util/rng.hpp"

#include <numeric>

namespace ppa::util {

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t bound,
                                                    std::size_t count) {
  PPA_REQUIRE(count <= bound, "cannot sample more distinct values than the range holds");
  std::vector<std::size_t> indices(bound);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(bound - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

}  // namespace ppa::util
