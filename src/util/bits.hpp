// Bit-level helpers shared by the bit-serial bus primitives and the
// saturating h-bit arithmetic.
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.hpp"

namespace ppa::util {

/// Number of value bits this repo supports for the PPA word size `h`.
/// The paper's algorithms are parameterized on h; 1..32 covers every
/// experiment (E3 sweeps h in {4..32}).
inline constexpr int kMaxWordBits = 32;

/// True iff `h` is a legal PPA word width.
constexpr bool valid_word_bits(int h) noexcept { return h >= 1 && h <= kMaxWordBits; }

/// All-ones mask of the low `h` bits (h in [1, 32]).
constexpr std::uint32_t low_mask(int h) noexcept {
  return (h >= 32) ? 0xFFFFFFFFu : ((std::uint32_t{1} << h) - 1u);
}

/// Value of bit `j` of `x` (0 = LSB), as 0/1.
constexpr std::uint32_t bit_of(std::uint32_t x, int j) noexcept {
  return (x >> j) & 1u;
}

/// `x` with bit `j` set to `value`.
constexpr std::uint32_t with_bit(std::uint32_t x, int j, bool value) noexcept {
  const std::uint32_t m = std::uint32_t{1} << j;
  return value ? (x | m) : (x & ~m);
}

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
constexpr int ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ceil_log2(x);
}

/// Number of bits needed to represent `x` (0 needs 1 bit).
constexpr int bit_width_of(std::uint64_t x) noexcept {
  return x == 0 ? 1 : static_cast<int>(std::bit_width(x));
}

}  // namespace ppa::util
