// Sequential reference algorithms.
//
// These are the ground truth every machine model is verified against
// (experiment E1) and the classical comparators for the examples:
//
//   dijkstra_to      — binary-heap Dijkstra on the reverse graph; O(E log V).
//   bellman_ford_to  — synchronous Bellman–Ford; also reports the round
//                      count, which equals the PPA loop's useful-iteration
//                      count (the DP is the same recurrence).
//   floyd_warshall   — all-pairs, for cross-checking any destination.
//
// All of them use the same h-bit saturating field as the machines, so
// costs match bit for bit (including saturation to "infinity" on
// overflowing paths).
#pragma once

#include <vector>

#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"

namespace ppa::baseline {

/// Single-destination Dijkstra (non-negative weights — always true here,
/// weights are unsigned). Ties in the next-hop pointer resolve to the
/// smallest vertex index, matching the PPA's selected_min.
[[nodiscard]] graph::McpSolution dijkstra_to(const graph::WeightMatrix& g,
                                             graph::Vertex destination);

struct BellmanFordResult {
  graph::McpSolution solution;
  /// Synchronous relaxation rounds executed after the 1-edge init until the
  /// cost vector stopped changing (the paper's loop count).
  std::size_t rounds = 0;
};

/// Synchronous (Jacobi-style) Bellman–Ford toward `destination`, the exact
/// sequential mirror of the machine DP: init with 1-edge paths, then
/// rounds of dist[i] = min(dist[i], min_j(w_ij + dist[j])) with the
/// diagonal treated as 0. Next-hop ties resolve to the smallest index.
[[nodiscard]] BellmanFordResult bellman_ford_to(const graph::WeightMatrix& g,
                                                graph::Vertex destination);

/// All-pairs costs: dist(i, j) = cost of the cheapest path i -> j, in the
/// saturating field; next(i, j) = the vertex after i on such a path.
struct AllPairs {
  std::size_t n = 0;
  std::vector<graph::Weight> dist;   // row-major n x n
  std::vector<graph::Vertex> next;   // row-major n x n

  [[nodiscard]] graph::Weight dist_at(graph::Vertex i, graph::Vertex j) const {
    return dist[i * n + j];
  }
  [[nodiscard]] graph::Vertex next_at(graph::Vertex i, graph::Vertex j) const {
    return next[i * n + j];
  }

  /// The single-destination slice toward `d`, comparable to any machine's
  /// McpSolution.
  [[nodiscard]] graph::McpSolution toward(graph::Vertex d) const;
};

[[nodiscard]] AllPairs floyd_warshall(const graph::WeightMatrix& g);

}  // namespace ppa::baseline
