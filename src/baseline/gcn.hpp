// MCP on the Gated Connection Network (GCN) — Shu & Nash's comparator.
//
// The GCN is a processor array whose row/column interconnect is an
// open-drain bus with per-PE *gates*: closing a gate segments the line,
// and every PE on a segment both drives (wired-OR) and senses it. The
// dynamic-programming MCP on the GCN therefore computes the segment
// minimum bit-serially — h wired-OR cycles, MSB first — with every PE
// reconstructing the minimum locally from the OR results; there is no
// "route to the extreme node and broadcast back" epilogue like the PPA's
// min() (the PPA needs it because only Open switch-boxes can inject a
// full word onto a bus).
//
// Mapping onto this repo: the GCN's gated segments are exactly the
// clusters of the sim::bus engine, and the local-reconstruction minimum is
// ppc::pmin_orprobe / selected_min_orprobe. The DP skeleton (column
// broadcast of row d, row min/argmin, diagonal return, global-OR
// convergence test) is identical to the PPA's, so gcn::minimum_cost_path
// runs mcp::minimum_cost_path with MinVariant::OrProbe on a dedicated
// machine and reports its own step counts. The measured per-iteration gap
// between GCN and PPA is the PPA min()'s two extra broadcasts — constants,
// not asymptotics, which is the paper's parity claim.
#pragma once

#include "graph/weight_matrix.hpp"
#include "mcp/mcp.hpp"

namespace ppa::baseline::gcn {

using Result = mcp::Result;

/// Runs the GCN-style DP toward `destination` on `machine`.
[[nodiscard]] Result minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                                       graph::Vertex destination);

/// Convenience one-shot with a fresh host-sequential machine.
[[nodiscard]] Result solve(const graph::WeightMatrix& graph, graph::Vertex destination);

}  // namespace ppa::baseline::gcn
