#include "baseline/hypercube.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ppa::baseline::hypercube {

Machine::Machine(int dimensions, int bits) : dimensions_(dimensions), field_(bits) {
  PPA_REQUIRE(dimensions >= 0 && dimensions <= 26, "hypercube dimension out of range");
}

std::vector<Word> Machine::exchange(std::span<const Word> reg, int k) {
  PPA_REQUIRE(reg.size() == pe_count(), "register must cover the whole machine");
  PPA_REQUIRE(k >= 0 && k < dimensions_, "dimension out of range");
  steps_.charge(sim::StepCategory::Shift);  // one route step
  const std::size_t flip = std::size_t{1} << k;
  std::vector<Word> out(reg.size());
  for (std::size_t pe = 0; pe < reg.size(); ++pe) out[pe] = reg[pe ^ flip];
  return out;
}

bool Machine::global_or(std::span<const Word> flags) {
  PPA_REQUIRE(flags.size() == pe_count(), "register must cover the whole machine");
  steps_.charge(sim::StepCategory::GlobalOr);
  return std::any_of(flags.begin(), flags.end(), [](Word w) { return w != 0; });
}

namespace {

/// (value, index) lexicographic all-reduce minimum across dimensions
/// [first, first + count): after it, every PE in each reduction group
/// holds the group's minimum value and the smallest index attaining it.
void allreduce_min_pair(Machine& m, std::vector<Word>& value, std::vector<Word>& index,
                        int first, int count) {
  for (int k = first; k < first + count; ++k) {
    const std::vector<Word> pv = m.exchange(value, k);
    const std::vector<Word> pi = m.exchange(index, k);
    m.charge_alu(2);  // compare + conditional select of the pair
    for (std::size_t pe = 0; pe < value.size(); ++pe) {
      if (pv[pe] < value[pe] || (pv[pe] == value[pe] && pi[pe] < index[pe])) {
        value[pe] = pv[pe];
        index[pe] = pi[pe];
      }
    }
  }
}

/// Grid transpose in the hypercube embedding: for each bit pair (k, k+L)
/// route along both dimensions and keep the routed value exactly where the
/// two address bits differ. 2L route steps.
std::vector<Word> transpose(Machine& m, const std::vector<Word>& reg, int log_side) {
  std::vector<Word> current(reg);
  for (int k = 0; k < log_side; ++k) {
    const std::vector<Word> once = m.exchange(current, k);
    const std::vector<Word> both = m.exchange(once, k + log_side);
    m.charge_alu(1);  // select on (row bit != column bit)
    const std::size_t col_bit = std::size_t{1} << k;
    const std::size_t row_bit = std::size_t{1} << (k + log_side);
    for (std::size_t pe = 0; pe < current.size(); ++pe) {
      const bool differ = ((pe & col_bit) != 0) != ((pe & row_bit) != 0);
      if (differ) current[pe] = both[pe];
    }
  }
  return current;
}

}  // namespace

Result minimum_cost_path(const graph::WeightMatrix& graph, graph::Vertex destination) {
  const std::size_t n = graph.size();
  PPA_REQUIRE(destination < n, "destination out of range");

  const int log_side = util::ceil_log2(n);
  const std::size_t side = std::size_t{1} << log_side;
  Machine machine(2 * log_side, graph.field().bits());
  const Word inf = graph.infinity();

  const auto pe_of = [side](std::size_t i, std::size_t j) { return i * side + j; };

  // Load W (padded with infinity; every diagonal 0) and the DP state.
  // dist / next are indexed by COLUMN: every PE of column j holds dist_j.
  std::vector<Word> w(side * side, inf);
  std::vector<Word> dist(side * side, inf);
  std::vector<Word> next(side * side, static_cast<Word>(destination));
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      if (i < n && j < n) w[pe_of(i, j)] = (i == j) ? 0 : graph.at(i, j);
      if (i == j) w[pe_of(i, j)] = 0;
      if (j < n) dist[pe_of(i, j)] = (j == destination) ? 0 : graph.at(j, destination);
    }
  }
  machine.charge_alu(3);  // the three host loads

  std::vector<Word> col_index(side * side);
  for (std::size_t pe = 0; pe < col_index.size(); ++pe) {
    col_index[pe] = static_cast<Word>(pe % side);
  }
  machine.charge_alu(1);

  Result result;
  result.log_side = log_side;
  const auto& field = machine.field();

  for (;;) {
    PPA_REQUIRE(result.iterations < n + 2,
                "hypercube relaxation failed to converge within the iteration cap");

    // Candidates: PE (i,j) computes w_ij + dist_j.
    std::vector<Word> cand(side * side);
    for (std::size_t pe = 0; pe < cand.size(); ++pe) cand[pe] = field.add(w[pe], dist[pe]);
    machine.charge_alu(1);

    // Row minimum + argmin via column-dimension butterfly all-reduce.
    std::vector<Word> arg(col_index);
    machine.charge_alu(1);  // copy of the index register
    allreduce_min_pair(machine, cand, arg, 0, log_side);

    // cand now holds m_i in every PE of row i; transpose so every PE of
    // column j holds m_j (and the matching argmin).
    const std::vector<Word> m_by_col = transpose(machine, cand, log_side);
    const std::vector<Word> a_by_col = transpose(machine, arg, log_side);

    // Strict-improvement update, mirroring the PPA's changed test.
    std::vector<Word> changed(side * side, 0);
    for (std::size_t pe = 0; pe < dist.size(); ++pe) {
      if (m_by_col[pe] < dist[pe]) {
        dist[pe] = m_by_col[pe];
        next[pe] = a_by_col[pe];
        changed[pe] = 1;
      }
    }
    machine.charge_alu(3);  // compare + two conditional stores

    ++result.iterations;
    if (!machine.global_or(changed)) break;
  }

  result.total_steps = machine.steps();
  result.solution.destination = destination;
  result.solution.cost.resize(n);
  result.solution.next.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.solution.cost[j] = dist[pe_of(0, j)];
    result.solution.next[j] = static_cast<graph::Vertex>(next[pe_of(0, j)]);
  }
  return result;
}

}  // namespace ppa::baseline::hypercube
