#include "baseline/sequential.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "util/check.hpp"

namespace ppa::baseline {

graph::McpSolution dijkstra_to(const graph::WeightMatrix& g, graph::Vertex destination) {
  const std::size_t n = g.size();
  PPA_REQUIRE(destination < n, "destination out of range");
  const graph::Weight inf = g.infinity();
  const auto& field = g.field();

  graph::McpSolution solution;
  solution.destination = destination;
  solution.cost.assign(n, inf);
  solution.next.assign(n, destination);

  // Dijkstra over the reverse graph: settling u with distance D means the
  // cheapest u -> destination path costs D. Edges are scanned v -> u, i.e.
  // forward edge (u, v) relaxes u from v.
  using Entry = std::pair<graph::Weight, graph::Vertex>;  // (dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<bool> settled(n, false);

  solution.cost[destination] = 0;
  heap.emplace(0, destination);

  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    for (graph::Vertex u = 0; u < n; ++u) {
      if (u == v) continue;
      const graph::Weight w = g.at(u, v);
      if (w == inf) continue;
      const graph::Weight candidate = field.add(w, dist);
      if (candidate == inf) continue;  // saturated — indistinguishable from unreachable
      if (candidate < solution.cost[u] ||
          (candidate == solution.cost[u] && v < solution.next[u])) {
        solution.cost[u] = candidate;
        solution.next[u] = v;
        heap.emplace(candidate, u);
      }
    }
  }
  return solution;
}

BellmanFordResult bellman_ford_to(const graph::WeightMatrix& g, graph::Vertex destination) {
  const std::size_t n = g.size();
  PPA_REQUIRE(destination < n, "destination out of range");
  const graph::Weight inf = g.infinity();
  const auto& field = g.field();

  BellmanFordResult result;
  auto& sol = result.solution;
  sol.destination = destination;
  sol.cost.assign(n, inf);
  sol.next.assign(n, destination);

  // 1-edge init, diagonal treated as 0 (empty path d -> d).
  for (graph::Vertex i = 0; i < n; ++i) sol.cost[i] = g.at(i, destination);
  sol.cost[destination] = 0;

  for (std::size_t round = 0; round < n + 1; ++round) {
    std::vector<graph::Weight> next_cost(sol.cost);
    std::vector<graph::Vertex> next_ptr(sol.next);
    bool changed = false;
    for (graph::Vertex i = 0; i < n; ++i) {
      if (i == destination) continue;
      graph::Weight best = sol.cost[i];
      graph::Vertex best_next = sol.next[i];
      for (graph::Vertex j = 0; j < n; ++j) {
        const graph::Weight w = (i == j) ? 0 : g.at(i, j);
        if (w == inf || sol.cost[j] == inf) continue;
        const graph::Weight candidate = field.add(w, sol.cost[j]);
        if (candidate == inf) continue;
        // Strict improvement only — mirrors the machine, whose PTN is
        // rewritten only "if a SOW_id changes"; ties resolve to the
        // smallest next index via the candidate scan order.
        if (candidate < best) {
          best = candidate;
          best_next = j == i ? best_next : j;
          // j == i means "keep the old value"; its pointer stays.
        }
      }
      if (best != sol.cost[i]) {
        next_cost[i] = best;
        next_ptr[i] = best_next;
        changed = true;
      }
    }
    if (!changed) break;
    sol.cost = std::move(next_cost);
    sol.next = std::move(next_ptr);
    result.rounds = round + 1;
  }
  return result;
}

graph::McpSolution AllPairs::toward(graph::Vertex d) const {
  PPA_REQUIRE(d < n, "destination out of range");
  graph::McpSolution solution;
  solution.destination = d;
  solution.cost.resize(n);
  solution.next.resize(n);
  for (graph::Vertex i = 0; i < n; ++i) {
    solution.cost[i] = dist_at(i, d);
    solution.next[i] = next_at(i, d);
  }
  solution.cost[d] = 0;
  solution.next[d] = d;
  return solution;
}

AllPairs floyd_warshall(const graph::WeightMatrix& g) {
  const std::size_t n = g.size();
  const graph::Weight inf = g.infinity();
  const auto& field = g.field();

  AllPairs ap;
  ap.n = n;
  ap.dist.assign(g.cells().begin(), g.cells().end());
  ap.next.resize(n * n);
  for (graph::Vertex i = 0; i < n; ++i) {
    for (graph::Vertex j = 0; j < n; ++j) ap.next[i * n + j] = j;
    ap.dist[i * n + i] = 0;
    ap.next[i * n + i] = i;
  }

  for (graph::Vertex k = 0; k < n; ++k) {
    for (graph::Vertex i = 0; i < n; ++i) {
      const graph::Weight dik = ap.dist[i * n + k];
      if (dik == inf) continue;
      for (graph::Vertex j = 0; j < n; ++j) {
        const graph::Weight dkj = ap.dist[k * n + j];
        if (dkj == inf) continue;
        const graph::Weight through_k = field.add(dik, dkj);
        if (through_k == inf) continue;
        graph::Weight& dij = ap.dist[i * n + j];
        if (through_k < dij) {
          dij = through_k;
          ap.next[i * n + j] = ap.next[i * n + k];
        }
      }
    }
  }
  return ap;
}

}  // namespace ppa::baseline
