// MCP on a plain (non-reconfigurable) SIMD mesh.
//
// The paper motivates the PPA against "the simple mesh": without buses,
// moving a value across a row or column costs one nearest-neighbour shift
// per hop, so each relaxation iteration — broadcast row d, row min/argmin,
// return to row d — costs Θ(n) SIMD steps instead of the PPA's Θ(h).
// This module runs the *same* dynamic program on the same Machine but
// restricted to shift + ALU instructions, which makes the E4/E7 comparison
// an apples-to-apples measurement: identical DP, identical step
// accounting, only the communication capability differs.
//
// Word-parallel minimum: a plain mesh has full-word neighbour links, so
// the row reduction is a word-level scan (min+argmin carried together,
// ties to the smaller index), not a bit-serial loop.
#pragma once

#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"
#include "sim/machine.hpp"

namespace ppa::baseline {

struct MeshMcpResult {
  graph::McpSolution solution;
  std::size_t iterations = 0;
  sim::StepCounter init_steps;
  sim::StepCounter total_steps;
};

/// Runs the DP on `machine` using shift/ALU only. Same preconditions as
/// mcp::minimum_cost_path. The machine's bus system is never used, so the
/// result is identical under Ring and Linear topologies.
[[nodiscard]] MeshMcpResult mesh_minimum_cost_path(sim::Machine& machine,
                                                   const graph::WeightMatrix& graph,
                                                   graph::Vertex destination);

/// Convenience one-shot with a fresh host-sequential machine.
[[nodiscard]] MeshMcpResult mesh_solve(const graph::WeightMatrix& graph,
                                       graph::Vertex destination);

}  // namespace ppa::baseline
