#include "baseline/mesh_mcp.hpp"

#include "ppc/primitives.hpp"
#include "util/check.hpp"

namespace ppa::baseline {

namespace {

using ppc::Context;
using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Word;

/// Spreads the `src` value held by the source PEs (exactly one per line
/// along `axis`) to every PE of the line, using 2(n-1) neighbour shifts
/// (one sweep each way). This is the mesh's O(n) substitute for one O(1)
/// bus broadcast.
Pint spread_line(Context& ctx, const Pint& src, const Pbool& source, sim::Axis axis) {
  const std::size_t n = ctx.n();
  Pint val(ctx, 0);
  Pbool have(source);
  ppc::where(ctx, source, [&] { val = src; });

  const auto sweep = [&](Direction dir) {
    for (std::size_t step = 1; step < n; ++step) {
      const Pint moved = ppc::shift(val, dir, 0);
      const Pbool arrived = ppc::shift(have, dir, false);
      ppc::where(ctx, (!have) & arrived, [&] { val = moved; });
      have = have | arrived;
    }
  };
  if (axis == sim::Axis::Row) {
    sweep(Direction::East);
    sweep(Direction::West);
  } else {
    sweep(Direction::South);
    sweep(Direction::North);
  }
  return val;
}

struct RowMin {
  Pint value;
  Pint index;
};

/// Word-parallel row minimum + argmin by an eastward accumulate sweep
/// followed by a spread back. Lexicographic (value, index) accumulation
/// resolves cost ties to the smallest column index, like selected_min.
RowMin row_min_scan(Context& ctx, const Pint& src) {
  const std::size_t n = ctx.n();
  const Word inf = ctx.field().infinity();
  Pint best(src);
  Pint best_idx(ppc::col_of(ctx));
  for (std::size_t step = 1; step < n; ++step) {
    const Pint moved_v = ppc::shift(best, Direction::East, inf);
    const Pint moved_i = ppc::shift(best_idx, Direction::East, 0);
    const Pbool better = (moved_v < best) | ((moved_v == best) & (moved_i < best_idx));
    ppc::where(ctx, better, [&] {
      best = moved_v;
      best_idx = moved_i;
    });
  }
  // The full-row result sits in the last column; spread it back.
  const Pbool at_end = (ppc::col_of(ctx) == static_cast<Word>(n - 1));
  return RowMin{spread_line(ctx, best, at_end, sim::Axis::Row),
                spread_line(ctx, best_idx, at_end, sim::Axis::Row)};
}

std::vector<Word> machine_weights(const graph::WeightMatrix& g) {
  const std::size_t n = g.size();
  std::vector<Word> cells(g.cells().begin(), g.cells().end());
  for (std::size_t i = 0; i < n; ++i) cells[i * n + i] = 0;
  return cells;
}

}  // namespace

MeshMcpResult mesh_minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                                     graph::Vertex destination) {
  const std::size_t n = graph.size();
  PPA_REQUIRE(machine.n() == n, "machine side must equal the vertex count");
  PPA_REQUIRE(machine.field() == graph.field(),
              "machine and graph must use the same h-bit field");
  PPA_REQUIRE(destination < n, "destination out of range");

  Context ctx(machine);
  const sim::StepCounter at_entry = machine.steps();

  const Pint W(ctx, machine_weights(graph));
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  const Word d = static_cast<Word>(destination);
  const Pbool row_is_d = (ROW == d);
  const Pbool col_is_d = (COL == d);
  const Pbool on_diagonal = (ROW == COL);

  Pint SOW(ctx, machine.field().infinity());
  Pint PTN(ctx, d);

  // Init: transpose column d of W into row d with two line spreads
  // (the mesh version of the PPA's two init broadcasts).
  {
    const Pint w_into_d = spread_line(ctx, W, col_is_d, sim::Axis::Row);
    const Pint init_row = spread_line(ctx, w_into_d, on_diagonal, sim::Axis::Column);
    ppc::where(ctx, row_is_d, [&] {
      SOW = init_row;
      PTN = Pint(ctx, d);
    });
  }

  MeshMcpResult result;
  result.init_steps = machine.steps().since(at_entry);

  for (;;) {
    PPA_REQUIRE(result.iterations < n + 2,
                "mesh relaxation failed to converge within the iteration cap");

    // Column spread of row d's SOW, then the candidate matrix.
    const Pint sow_col = spread_line(ctx, SOW, row_is_d, sim::Axis::Column);
    Pint candidates(ctx, 0);
    candidates.store_all(sow_col + W);

    const RowMin row_best = row_min_scan(ctx, candidates);

    // Move the per-row results from the diagonal into row d.
    const Pint min_at_d = spread_line(ctx, row_best.value, on_diagonal, sim::Axis::Column);
    const Pint ptr_at_d = spread_line(ctx, row_best.index, on_diagonal, sim::Axis::Column);

    Pbool changed(ctx, false);
    Pint OLD_SOW(ctx, 0);
    ppc::where(ctx, row_is_d, [&] {
      OLD_SOW = SOW;
      SOW = min_at_d;
      changed = (SOW != OLD_SOW);
      ppc::where(ctx, changed, [&] { PTN = ptr_at_d; });
    });

    ++result.iterations;
    if (!ppc::any(changed)) break;
  }

  result.total_steps = machine.steps().since(at_entry);
  result.solution.destination = destination;
  result.solution.cost.resize(n);
  result.solution.next.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.solution.cost[i] = SOW.at(destination, i);
    result.solution.next[i] = static_cast<graph::Vertex>(PTN.at(destination, i));
  }
  return result;
}

MeshMcpResult mesh_solve(const graph::WeightMatrix& graph, graph::Vertex destination) {
  sim::MachineConfig config;
  config.n = graph.size();
  config.bits = graph.field().bits();
  sim::Machine machine(config);
  return mesh_minimum_cost_path(machine, graph, destination);
}

}  // namespace ppa::baseline
