#include "baseline/gcn.hpp"

namespace ppa::baseline::gcn {

Result minimum_cost_path(sim::Machine& machine, const graph::WeightMatrix& graph,
                         graph::Vertex destination) {
  mcp::Options options;
  options.min_variant = mcp::MinVariant::OrProbe;
  return mcp::minimum_cost_path(machine, graph, destination, options);
}

Result solve(const graph::WeightMatrix& graph, graph::Vertex destination) {
  sim::MachineConfig config;
  config.n = graph.size();
  config.bits = graph.field().bits();
  sim::Machine machine(config);
  return minimum_cost_path(machine, graph, destination);
}

}  // namespace ppa::baseline::gcn
