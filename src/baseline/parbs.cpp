#include "baseline/parbs.hpp"

#include <numeric>

#include "util/check.hpp"

namespace ppa::baseline::parbs {

namespace {

/// Plain union-find over the port-graph nodes.
class UnionFind {
 public:
  explicit UnionFind(std::size_t size) : parent_(size) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

SwitchConfig SwitchConfig::fuse(std::initializer_list<Port> ports) {
  SwitchConfig config;
  PPA_REQUIRE(ports.size() >= 2, "fusing fewer than two ports is a no-op");
  const auto first = static_cast<std::size_t>(*ports.begin());
  for (const Port p : ports) {
    config.group[static_cast<std::size_t>(p)] = static_cast<std::uint8_t>(first);
  }
  return config;
}

Machine::Machine(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  PPA_REQUIRE(rows >= 1 && cols >= 1, "PARBS dimensions must be positive");
}

std::vector<std::size_t> Machine::components(std::span<const SwitchConfig> configs) {
  PPA_REQUIRE(configs.size() == pe_count(), "one switch config per PE");
  steps_.charge_bus(sim::StepCategory::BusBroadcast, rows_ * cols_);

  UnionFind uf(pe_count() * 4);
  // Intra-PE fusion.
  for (std::size_t pe = 0; pe < pe_count(); ++pe) {
    const auto& group = configs[pe].group;
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t b = a + 1; b < 4; ++b) {
        if (group[a] == group[b]) uf.unite(pe * 4 + a, pe * 4 + b);
      }
    }
  }
  // Inter-PE wires: East-West and South-North between neighbours.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t pe = r * cols_ + c;
      if (c + 1 < cols_) {
        uf.unite(node_of(pe, Port::East), node_of(pe + 1, Port::West));
      }
      if (r + 1 < rows_) {
        uf.unite(node_of(pe, Port::South), node_of(pe + cols_, Port::North));
      }
    }
  }

  std::vector<std::size_t> labels(pe_count() * 4);
  for (std::size_t node = 0; node < labels.size(); ++node) labels[node] = uf.find(node);
  return labels;
}

std::vector<bool> Machine::reachable_from(std::span<const SwitchConfig> configs,
                                          std::size_t drive_pe, Port drive_port) {
  PPA_REQUIRE(drive_pe < pe_count(), "driver out of range");
  const auto labels = components(configs);
  const std::size_t target = labels[node_of(drive_pe, drive_port)];
  std::vector<bool> reach(labels.size());
  for (std::size_t node = 0; node < labels.size(); ++node) {
    reach[node] = (labels[node] == target);
  }
  return reach;
}

std::vector<bool> Machine::component_or(std::span<const SwitchConfig> configs,
                                        const std::vector<bool>& pulls) {
  PPA_REQUIRE(pulls.size() == pe_count() * 4, "one pull flag per (pe, port) node");
  const auto labels = components(configs);
  steps_.charge_bus(sim::StepCategory::BusOr, rows_ * cols_);
  std::vector<bool> pulled_label(pe_count() * 4, false);
  for (std::size_t node = 0; node < pulls.size(); ++node) {
    if (pulls[node]) pulled_label[labels[node]] = true;
  }
  std::vector<bool> out(pulls.size());
  for (std::size_t node = 0; node < pulls.size(); ++node) {
    out[node] = pulled_label[labels[node]];
  }
  return out;
}

CountResult count_ones(const std::vector<bool>& bits) {
  const std::size_t n = bits.size();
  PPA_REQUIRE(n >= 1, "count_ones needs at least one bit");
  Machine machine(n + 1, n);
  const auto at_entry = machine.steps();

  // Every PE derives its switch setting from its column's bit: one SIMD
  // instruction. 1-bit column: the bus entering from the West drops one
  // row ({W,S} fused) and the row below carries on East ({N,E} fused);
  // 0-bit column: straight through ({W,E}).
  std::vector<SwitchConfig> configs(machine.pe_count());
  for (std::size_t r = 0; r <= n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      SwitchConfig config = SwitchConfig::all_separate();
      if (bits[c]) {
        config.group = {0, 0, 3, 3};  // {N,E} fused, {W,S} fused
      } else {
        config.group = {0, 1, 2, 1};  // {E,W} fused
      }
      configs[r * n + c] = config;
    }
  }
  machine.charge_alu();

  // Inject at the West port of (0, 0); the signal exits the East side at
  // row == popcount. One settle, then the controller reads the exit row.
  const auto reach = machine.reachable_from(configs, 0, Port::West);
  CountResult result;
  bool found = false;
  for (std::size_t r = 0; r <= n; ++r) {
    if (reach[machine.node_of(r * n + (n - 1), Port::East)]) {
      result.count = r;
      found = true;
      break;
    }
  }
  PPA_REQUIRE(found, "staircase bus must exit on the East side");
  result.parity = (result.count % 2) != 0;
  result.steps = machine.steps().since(at_entry);
  return result;
}

}  // namespace ppa::baseline::parbs
