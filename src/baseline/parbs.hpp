// PARBS — Processor Arrays with a Reconfigurable Bus System.
//
// The paper's concluding remarks place the PPA in a power hierarchy:
// "The row/column only PPA is a less powerful model with respect to the
// Reconfigurable Mesh [1], the Gated Connection Network [5] and the
// PARBS [6] ... Nevertheless it is hardware implementable". This module
// makes the hierarchy measurable. A PARBS PE may fuse ANY subset of its
// four ports, so buses can take arbitrary connected shapes across the
// array — which enables constant-time tricks that row/column sub-buses
// cannot express. The classic demonstration implemented here is
// bit summation (Wang & Chen's model; the construction follows the
// staircase technique): bits b_0..b_{n-1} are loaded one per column, a
// 1-bit column steps the bus down one row ({N,E} and {W,S} fused) while a
// 0-bit column passes it straight ({W,E}); a signal injected at the top
// left then EXITS AT ROW = number of ones — a unary popcount, hence also
// parity — in O(1) bus steps, independent of n. On the PPA the same
// reduction costs Θ(n) shift steps (no port fusion). Experiment E10.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/step_counter.hpp"

namespace ppa::baseline::parbs {

using Word = std::uint32_t;

/// PE port ids.
enum class Port : int { North = 0, East = 1, South = 2, West = 3 };

/// Per-PE switch setting: ports with equal group ids are fused inside the
/// PE. The default keeps all four ports separate (no bus through the PE).
struct SwitchConfig {
  std::array<std::uint8_t, 4> group{0, 1, 2, 3};

  [[nodiscard]] static SwitchConfig all_separate() { return {}; }

  /// Fuses exactly the given ports into one group (the rest stay
  /// separate).
  [[nodiscard]] static SwitchConfig fuse(std::initializer_list<Port> ports);

  friend bool operator==(const SwitchConfig&, const SwitchConfig&) = default;
};

/// A rows x cols PARBS. Primitives charge the machine's StepCounter:
/// writing a configuration is one ALU step; a bus settle (components /
/// reachability / wired-OR probe) is one BusBroadcast or BusOr step.
class Machine {
 public:
  Machine(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t pe_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] sim::StepCounter& steps() noexcept { return steps_; }
  [[nodiscard]] const sim::StepCounter& steps() const noexcept { return steps_; }

  /// Node id of (pe, port) in the port graph.
  [[nodiscard]] std::size_t node_of(std::size_t pe, Port port) const {
    return pe * 4 + static_cast<std::size_t>(port);
  }

  /// Bus component labels per (pe, port) node under `configs` (size
  /// pe_count). Two nodes share a label iff they are electrically
  /// connected (intra-PE fusion + the wires between adjacent PEs).
  /// One BusBroadcast step (a settle).
  [[nodiscard]] std::vector<std::size_t> components(std::span<const SwitchConfig> configs);

  /// True per (pe, port) node iff it shares a bus with (drive_pe,
  /// drive_port) — "where does a signal injected here reach?". One
  /// BusBroadcast step.
  [[nodiscard]] std::vector<bool> reachable_from(std::span<const SwitchConfig> configs,
                                                 std::size_t drive_pe, Port drive_port);

  /// Wired-OR per bus: pulls[node] pulls its component low; every node
  /// reads its component's OR. One BusOr step.
  [[nodiscard]] std::vector<bool> component_or(std::span<const SwitchConfig> configs,
                                               const std::vector<bool>& pulls);

  /// One elementwise SIMD instruction worth of accounting (e.g. every PE
  /// computing its switch setting from a local bit).
  void charge_alu(std::uint64_t count = 1) noexcept {
    steps_.charge(sim::StepCategory::Alu, count);
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  sim::StepCounter steps_;
};

struct CountResult {
  std::size_t count = 0;       // number of set bits
  bool parity = false;         // count & 1
  sim::StepCounter steps;      // O(1) bus steps, independent of n
};

/// The staircase bit summation: counts `bits` (size n) on an (n+1) x n
/// PARBS in O(1) bus steps. (Takes the vector directly — std::vector<bool>
/// is bit-packed and cannot be viewed through a span.)
[[nodiscard]] CountResult count_ones(const std::vector<bool>& bits);

}  // namespace ppa::baseline::parbs
