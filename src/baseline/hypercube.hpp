// MCP on a SIMD hypercube — the Connection Machine comparator.
//
// The paper claims the PPA MCP "delivers the same performance, in terms of
// computational complexity, as the hypercube interconnection network of
// the Connection Machine" [Hillis 1985]. To measure that claim (experiment
// E7) we implement the CM-style dynamic program on a word-level SIMD
// hypercube simulator:
//
//   * N = next_pow2(n); the N x N logical grid is embedded in a
//     2*log2(N)-dimensional hypercube (PE address = row bits : column
//     bits), the standard CM grid embedding.
//   * One `exchange` along a hypercube dimension moves one word between
//     every PE pair differing in that address bit — one Route step.
//   * The row minimum is a butterfly all-reduce over the column
//     dimensions: log2(N) exchanges, after which EVERY PE of the row
//     holds the (min, argmin) pair. Cost Θ(log n) word steps, versus the
//     PPA's Θ(h) bit-serial bus cycles.
//   * Moving per-row results into the destination row uses a column
//     all-broadcast (another log2(N) exchanges of the diagonal value —
//     implemented as a column all-reduce of a (flag, value) selection).
//
// Step accounting reuses sim::StepCounter: Shift counts routes, Alu counts
// elementwise instructions, GlobalOr the convergence test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"
#include "sim/step_counter.hpp"
#include "util/saturating.hpp"

namespace ppa::baseline::hypercube {

using Word = std::uint32_t;

/// Word-level SIMD hypercube of 2^dimensions PEs.
class Machine {
 public:
  Machine(int dimensions, int bits);

  [[nodiscard]] int dimensions() const noexcept { return dimensions_; }
  [[nodiscard]] std::size_t pe_count() const noexcept { return std::size_t{1} << dimensions_; }
  [[nodiscard]] const util::HField& field() const noexcept { return field_; }
  [[nodiscard]] sim::StepCounter& steps() noexcept { return steps_; }
  [[nodiscard]] const sim::StepCounter& steps() const noexcept { return steps_; }

  /// One route step: every PE receives its dimension-k partner's value.
  [[nodiscard]] std::vector<Word> exchange(std::span<const Word> reg, int k);

  /// One elementwise SIMD instruction worth of accounting.
  void charge_alu(std::uint64_t count = 1) noexcept {
    steps_.charge(sim::StepCategory::Alu, count);
  }

  /// Controller global-OR response line.
  [[nodiscard]] bool global_or(std::span<const Word> flags);

 private:
  int dimensions_;
  util::HField field_;
  sim::StepCounter steps_;
};

struct Result {
  graph::McpSolution solution;
  std::size_t iterations = 0;
  sim::StepCounter total_steps;
  int log_side = 0;  // log2 of the padded grid side
};

/// Runs the CM-style DP toward `destination`. The graph is padded to the
/// next power-of-two side with infinity weights (padding vertices are
/// isolated and never influence real ones).
[[nodiscard]] Result minimum_cost_path(const graph::WeightMatrix& graph,
                                       graph::Vertex destination);

}  // namespace ppa::baseline::hypercube
