// Text serialization of weight matrices.
//
// Format (DIMACS-inspired, whitespace separated, '#' comments):
//
//   ppa-graph 1            header + format version
//   n <vertices> h <bits>  problem line
//   e <from> <to> <weight> one line per finite edge
//
// Weights must be finite in the h-bit field; absent pairs are infinity.
// The writer emits edges in row-major order so serialization is canonical
// (write(read(x)) == x byte-for-byte).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/weight_matrix.hpp"

namespace ppa::graph {

/// Writes the canonical text form.
void write_graph(std::ostream& os, const WeightMatrix& g);

/// Convenience: the canonical text form as a string.
[[nodiscard]] std::string to_string(const WeightMatrix& g);

/// Parses the text form; throws util::ParseError on malformed input.
[[nodiscard]] WeightMatrix read_graph(std::istream& is);

/// Convenience: parse from a string.
[[nodiscard]] WeightMatrix graph_from_string(const std::string& text);

/// File helpers; throw util::ParseError on I/O failure.
void save_graph(const std::string& path, const WeightMatrix& g);
[[nodiscard]] WeightMatrix load_graph(const std::string& path);

}  // namespace ppa::graph
