#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace ppa::graph {

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw util::ParseError("malformed ppa-graph input: " + detail);
}

/// Reads the next non-comment token; returns false on clean EOF.
bool next_token(std::istream& is, std::string& token) {
  while (is >> token) {
    if (token[0] != '#') return true;
    std::string rest;
    std::getline(is, rest);  // discard comment to end of line
  }
  return false;
}

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') malformed(what + " is not a non-negative integer: " + token);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > (std::uint64_t{1} << 53)) malformed(what + " is implausibly large: " + token);
  }
  return value;
}

}  // namespace

void write_graph(std::ostream& os, const WeightMatrix& g) {
  os << "ppa-graph 1\n";
  os << "n " << g.size() << " h " << g.field().bits() << '\n';
  for (const Edge& e : g.edges()) {
    os << "e " << e.from << ' ' << e.to << ' ' << e.weight << '\n';
  }
}

std::string to_string(const WeightMatrix& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

WeightMatrix read_graph(std::istream& is) {
  std::string token;
  if (!next_token(is, token) || token != "ppa-graph") malformed("missing header");
  if (!next_token(is, token) || token != "1") malformed("unsupported format version");
  if (!next_token(is, token) || token != "n") malformed("missing problem line");
  if (!next_token(is, token)) malformed("missing vertex count");
  const auto n = static_cast<std::size_t>(parse_u64(token, "vertex count"));
  if (n == 0) malformed("vertex count must be positive");
  if (!next_token(is, token) || token != "h") malformed("missing word width marker");
  if (!next_token(is, token)) malformed("missing word width");
  const auto bits = static_cast<int>(parse_u64(token, "word width"));
  if (!util::valid_word_bits(bits)) malformed("word width out of range [1,32]");

  WeightMatrix g(n, bits);
  while (next_token(is, token)) {
    if (token != "e") malformed("expected edge line, got: " + token);
    std::string from_tok;
    std::string to_tok;
    std::string w_tok;
    if (!next_token(is, from_tok) || !next_token(is, to_tok) || !next_token(is, w_tok)) {
      malformed("truncated edge line");
    }
    const auto from = static_cast<std::size_t>(parse_u64(from_tok, "edge source"));
    const auto to = static_cast<std::size_t>(parse_u64(to_tok, "edge target"));
    const auto weight = parse_u64(w_tok, "edge weight");
    if (from >= n || to >= n) malformed("edge endpoint out of range");
    if (weight >= g.infinity()) malformed("edge weight must be finite in the h-bit field");
    g.set(from, to, static_cast<Weight>(weight));
  }
  return g;
}

WeightMatrix graph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

void save_graph(const std::string& path, const WeightMatrix& g) {
  std::ofstream os(path);
  if (!os) throw util::ParseError("cannot open for writing: " + path);
  write_graph(os, g);
  if (!os) throw util::ParseError("write failed: " + path);
}

WeightMatrix load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw util::ParseError("cannot open for reading: " + path);
  return read_graph(is);
}

}  // namespace ppa::graph
