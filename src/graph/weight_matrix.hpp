// Dense weight-matrix graph representation.
//
// The paper maps the problem's data structure — "the matrix of the weights
// associated to each edge of a graph" — one-to-one onto the PE array:
// PE (i, j) holds w_ij, the weight of the directed edge i -> j, and a
// missing edge is MAXINT (+infinity in the h-bit field). WeightMatrix is
// that matrix plus the h-bit field it lives in; every machine model in this
// repo (PPA, GCN, hypercube, plain mesh) and every sequential baseline
// consumes it directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/saturating.hpp"

namespace ppa::graph {

/// Vertex index. The array is n x n so vertices are 0..n-1.
using Vertex = std::size_t;

/// Edge weight in the h-bit field; HField::infinity() means "no edge".
using Weight = std::uint32_t;

/// Directed edge with weight, used by builders and iteration helpers.
struct Edge {
  Vertex from = 0;
  Vertex to = 0;
  Weight weight = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// n x n matrix of h-bit weights. Immutable size, mutable entries.
class WeightMatrix {
 public:
  /// Creates an edgeless graph: every entry (including the diagonal) is
  /// infinity. `bits` is the PPA word width h.
  WeightMatrix(std::size_t vertex_count, int bits);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] const util::HField& field() const noexcept { return field_; }
  [[nodiscard]] Weight infinity() const noexcept { return field_.infinity(); }

  [[nodiscard]] Weight at(Vertex from, Vertex to) const {
    check_vertex(from);
    check_vertex(to);
    return cells_[from * n_ + to];
  }

  /// Sets w(from, to). The weight must be representable in the field
  /// (infinity itself is allowed and erases the edge).
  void set(Vertex from, Vertex to, Weight weight);

  /// Adds the edge only if `weight` improves on the current entry; used by
  /// generators that may produce parallel edges.
  void set_min(Vertex from, Vertex to, Weight weight);

  /// Removes the edge (entry becomes infinity).
  void erase(Vertex from, Vertex to) { set(from, to, infinity()); }

  [[nodiscard]] bool has_edge(Vertex from, Vertex to) const {
    return at(from, to) != infinity();
  }

  /// Number of finite entries (directed edges).
  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// All finite edges in row-major order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Out-degree of a vertex.
  [[nodiscard]] std::size_t out_degree(Vertex v) const;

  /// Read-only row view (length n): weights of edges leaving `from`.
  [[nodiscard]] std::span<const Weight> row(Vertex from) const {
    check_vertex(from);
    return {cells_.data() + from * n_, n_};
  }

  /// Flat row-major view of all n*n cells — what gets loaded into the PEs.
  [[nodiscard]] std::span<const Weight> cells() const noexcept { return cells_; }

  /// The same graph re-encoded in a different word width. Finite weights
  /// must be representable in the new field; throws ContractError otherwise.
  [[nodiscard]] WeightMatrix with_bits(int bits) const;

  /// The reverse graph (every edge flipped): transpose of the matrix.
  [[nodiscard]] WeightMatrix transposed() const;

  friend bool operator==(const WeightMatrix&, const WeightMatrix&) = default;

 private:
  void check_vertex(Vertex v) const {
    PPA_REQUIRE(v < n_, "vertex index out of range");
  }

  std::size_t n_;
  util::HField field_;
  std::vector<Weight> cells_;
};

}  // namespace ppa::graph
