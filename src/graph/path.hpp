// Path reconstruction and verification from the algorithm's outputs.
//
// The PPA algorithm (and every baseline here) reports, for each source
// vertex i, a cost SOW[i] and a successor pointer PTN[i]; the actual path
// is recovered by chasing PTN to the destination. These helpers turn that
// encoding into explicit vertex sequences and *prove* a solution correct
// against the graph: costs must match the traced paths edge by edge, and
// pointer chains must terminate.
#pragma once

#include <optional>
#include <vector>

#include "graph/weight_matrix.hpp"

namespace ppa::graph {

/// Single-destination shortest-path solution: cost[i] and next-hop ptn[i]
/// for every source vertex i. For unreachable vertices cost[i] is the
/// field's infinity and ptn[i] is meaningless (conventionally the vertex
/// itself).
struct McpSolution {
  std::vector<Weight> cost;
  std::vector<Vertex> next;
  Vertex destination = 0;
};

/// Chases `next` pointers from `source` toward `solution.destination`.
/// Returns the vertex sequence source..destination, or std::nullopt when
/// the chain does not reach the destination within n steps (corrupt
/// pointer data). NOTE: this is a pointer chase only — it cannot know the
/// field's infinity, so callers must check cost[source] != infinity first
/// (an unreachable vertex's conventional next == destination would
/// otherwise "trace" a one-hop non-path). verify_solution and path_cost
/// do validate edges and costs.
[[nodiscard]] std::optional<std::vector<Vertex>> extract_path(const McpSolution& solution,
                                                              Vertex source);

/// Sum of edge weights along an explicit path; infinity if any edge is
/// missing. A single-vertex path costs 0.
[[nodiscard]] Weight path_cost(const WeightMatrix& g, const std::vector<Vertex>& path);

/// Result of verifying a solution against the graph and a reference cost
/// vector (typically from Dijkstra).
struct VerifyResult {
  bool ok = true;
  std::string detail;  // empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Full structural verification of `solution` on `g`:
///  1. cost[destination] == 0 (by convention; the DP never relaxes d).
///  2. For every i with finite cost, extract_path succeeds and the traced
///     path's edge-weight sum equals cost[i] in the saturating field.
///  3. cost[] equals `reference_cost` exactly.
/// Any violation is reported with the offending vertex.
[[nodiscard]] VerifyResult verify_solution(const WeightMatrix& g, const McpSolution& solution,
                                           const std::vector<Weight>& reference_cost);

}  // namespace ppa::graph
