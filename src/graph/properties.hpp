// Structural graph properties the experiments need.
//
// The paper's complexity bound is O(p * h) where p is "the maximum MCP
// length from any vertex i to vertex d" — a property of the (graph,
// destination) pair. The E2 experiment sweeps p, so we must be able to
// measure it exactly for arbitrary inputs; `max_mcp_edges` computes it with
// a sequential Bellman–Ford layering that mirrors the machine DP.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/weight_matrix.hpp"

namespace ppa::graph {

/// reachable[i] == true iff a directed path i -> destination exists.
/// (Computed by BFS on the reverse graph; the destination is reachable
/// from itself.)
[[nodiscard]] std::vector<bool> reachable_to(const WeightMatrix& g, Vertex destination);

/// The paper's p: over all vertices i that can reach `destination`, the
/// minimum edge count among i's minimum-cost paths, maximized over i.
/// Returns 0 when no other vertex can reach the destination.
///
/// Computed as the number of rounds a synchronous Bellman–Ford relaxation
/// (diagonal treated as weight 0, exactly like the machines) needs before
/// the cost vector stops changing — which is also the iteration count the
/// PPA do-while loop performs useful work for.
[[nodiscard]] std::size_t max_mcp_edges(const WeightMatrix& g, Vertex destination);

/// Number of vertices with a finite-cost path to the destination,
/// including the destination itself.
[[nodiscard]] std::size_t reachable_count(const WeightMatrix& g, Vertex destination);

/// True iff every vertex can reach the destination.
[[nodiscard]] bool all_reach(const WeightMatrix& g, Vertex destination);

}  // namespace ppa::graph
