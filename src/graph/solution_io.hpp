// Text serialization of single-destination solutions.
//
// Format ('#' comments, whitespace separated):
//
//   ppa-solution 1
//   n <vertices> d <destination>
//   v <source> <cost|inf> <next>      one line per vertex
//
// Written by the CLI tool's `solve` command and consumed by `verify`, so
// a solution can be checked independently of the run that produced it.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/path.hpp"

namespace ppa::graph {

/// Writes the canonical text form. `infinity` is the field's infinity of
/// the graph the solution belongs to (costs equal to it print as "inf").
void write_solution(std::ostream& os, const McpSolution& solution, Weight infinity);

[[nodiscard]] std::string solution_to_string(const McpSolution& solution, Weight infinity);

/// Parses the text form; "inf" costs become `infinity`. Throws
/// util::ParseError on malformed input.
[[nodiscard]] McpSolution read_solution(std::istream& is, Weight infinity);

[[nodiscard]] McpSolution solution_from_string(const std::string& text, Weight infinity);

void save_solution(const std::string& path, const McpSolution& solution, Weight infinity);
[[nodiscard]] McpSolution load_solution(const std::string& path, Weight infinity);

}  // namespace ppa::graph
