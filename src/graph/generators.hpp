// Synthetic workload generators.
//
// The paper evaluates "the generic problem of finding the minimum cost path
// from all the vertices of a graph to one specific destination" without
// fixing a graph family, so the experiments sweep several families with
// controllable structure:
//
//   * random digraphs (Erdos–Renyi)         — E1 correctness, E4 size sweep
//   * directed ring / path                  — maximal p (path length), E2
//   * layered DAGs with fixed depth         — exact control of p, E2
//   * 2-D grid / torus meshes               — the router & terrain examples
//   * star, complete, banded, geometric     — degenerate and dense shapes
//
// All generators take an explicit Rng so every experiment is reproducible
// from a single seed.
#pragma once

#include <cstddef>

#include "graph/weight_matrix.hpp"
#include "util/rng.hpp"

namespace ppa::graph {

/// Weight range for generated finite edges, inclusive on both ends. Both
/// bounds must be finite in the target field.
struct WeightRange {
  Weight lo = 1;
  Weight hi = 15;
};

/// Erdos–Renyi digraph G(n, p): each ordered pair (i, j), i != j, gets an
/// edge with probability `edge_probability`, with a uniform weight from
/// `range`.
WeightMatrix random_digraph(std::size_t n, int bits, double edge_probability,
                            WeightRange range, util::Rng& rng);

/// Like random_digraph but guaranteed so that every vertex can reach
/// `destination`: a random spanning in-tree toward `destination` is laid
/// down first, then random extra edges are added with `edge_probability`.
WeightMatrix random_reachable_digraph(std::size_t n, int bits, double edge_probability,
                                      WeightRange range, Vertex destination, util::Rng& rng);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0 with uniform random weights.
/// The MCP from vertex (d+1) mod n to d has n-1 edges: the worst case p.
WeightMatrix directed_ring(std::size_t n, int bits, WeightRange range, util::Rng& rng);

/// Simple directed path 0 -> 1 -> ... -> n-1 (no wrap edge).
WeightMatrix directed_path(std::size_t n, int bits, WeightRange range, util::Rng& rng);

/// Layered DAG: `layers` layers of `width` vertices each plus a final sink
/// layer of one vertex (vertex n-1). Every vertex of layer k has `fan_out`
/// random edges into layer k+1. MCPs to the sink have exactly `layers`
/// edges, giving exact control over p for experiment E2. The total vertex
/// count is layers * width + 1.
WeightMatrix layered_dag(std::size_t layers, std::size_t width, std::size_t fan_out, int bits,
                         WeightRange range, util::Rng& rng);

/// 4-connected grid of `rows` x `cols` cells with bidirectional edges and
/// independent random weights per direction. Vertex id = r * cols + c.
WeightMatrix grid_mesh(std::size_t rows, std::size_t cols, int bits, WeightRange range,
                       util::Rng& rng);

/// grid_mesh plus wrap-around edges (torus).
WeightMatrix torus_mesh(std::size_t rows, std::size_t cols, int bits, WeightRange range,
                        util::Rng& rng);

/// Star: every vertex has one edge to `center` and `center` one edge back.
WeightMatrix star(std::size_t n, int bits, Vertex center, WeightRange range, util::Rng& rng);

/// Complete digraph (every ordered pair, no self loops).
WeightMatrix complete(std::size_t n, int bits, WeightRange range, util::Rng& rng);

/// Banded digraph: edge i -> j exists iff 0 < |i - j| <= bandwidth.
WeightMatrix banded(std::size_t n, int bits, std::size_t bandwidth, WeightRange range,
                    util::Rng& rng);

/// Random geometric digraph: n points in the unit square; edge i -> j iff
/// dist(i, j) <= radius, weight proportional to the distance (scaled into
/// `range`).
WeightMatrix geometric(std::size_t n, int bits, double radius, WeightRange range,
                       util::Rng& rng);

/// Ring of cliques: `cliques` complete directed cliques of `clique_size`
/// vertices each (vertex id = clique * clique_size + slot, so clique k is
/// block k of a clique_size-wide tiling), chained by one directed gateway
/// edge per clique (last slot of clique k -> first slot of clique k+1,
/// wrapping). Every vertex reaches every other, but a relaxation
/// wavefront crosses one gateway per iteration — the maximally LOCALIZED
/// sparse activity pattern, so with clique_size == the physical array
/// side only O(1) column blocks are dirty per iteration (the active-panel
/// schedule's best case, docs/tiling.md).
WeightMatrix ring_of_cliques(std::size_t cliques, std::size_t clique_size, int bits,
                             WeightRange range, util::Rng& rng);

/// Power-law digraph by preferential attachment: vertex v >= 1 adds
/// min(attach_edges, v) edges to distinct earlier vertices chosen
/// proportionally to their current degree (plus-one smoothing via a
/// uniform fallback), and each target independently gains a reverse edge
/// with probability `back_probability`. Every vertex reaches vertex 0
/// through the attachment DAG in O(log n) hops with high probability —
/// the hub-dominated sparse family (few relaxation iterations, global but
/// thinning activity).
WeightMatrix power_law(std::size_t n, int bits, std::size_t attach_edges,
                       double back_probability, WeightRange range, util::Rng& rng);

}  // namespace ppa::graph
