#include "graph/path.hpp"

#include <sstream>

#include "util/check.hpp"

namespace ppa::graph {

std::optional<std::vector<Vertex>> extract_path(const McpSolution& solution, Vertex source) {
  const std::size_t n = solution.cost.size();
  PPA_REQUIRE(source < n, "source out of range");
  PPA_REQUIRE(solution.next.size() == n, "solution vectors disagree on size");

  if (source == solution.destination) return std::vector<Vertex>{source};

  std::vector<Vertex> path{source};
  Vertex current = source;
  // A simple path visits at most n vertices; anything longer is a cycle in
  // the pointer data.
  for (std::size_t hops = 0; hops < n; ++hops) {
    const Vertex nxt = solution.next[current];
    if (nxt >= n) return std::nullopt;
    path.push_back(nxt);
    if (nxt == solution.destination) return path;
    current = nxt;
  }
  return std::nullopt;
}

Weight path_cost(const WeightMatrix& g, const std::vector<Vertex>& path) {
  PPA_REQUIRE(!path.empty(), "a path has at least one vertex");
  const auto& field = g.field();
  Weight total = 0;
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    const Weight w = g.at(path[k], path[k + 1]);
    if (w == g.infinity()) return g.infinity();
    total = field.add(total, w);
  }
  return total;
}

namespace {

VerifyResult fail(Vertex v, const std::string& why) {
  std::ostringstream os;
  os << "vertex " << v << ": " << why;
  return VerifyResult{false, os.str()};
}

}  // namespace

VerifyResult verify_solution(const WeightMatrix& g, const McpSolution& solution,
                             const std::vector<Weight>& reference_cost) {
  const std::size_t n = g.size();
  if (solution.cost.size() != n || solution.next.size() != n || reference_cost.size() != n) {
    return VerifyResult{false, "size mismatch between graph, solution and reference"};
  }
  const Vertex d = solution.destination;
  if (d >= n) return VerifyResult{false, "destination out of range"};

  for (Vertex i = 0; i < n; ++i) {
    if (solution.cost[i] != reference_cost[i]) {
      std::ostringstream os;
      os << "cost " << solution.cost[i] << " != reference " << reference_cost[i];
      return fail(i, os.str());
    }
  }

  if (solution.cost[d] != 0) return fail(d, "destination cost must be 0");

  for (Vertex i = 0; i < n; ++i) {
    if (i == d) continue;
    const bool reachable = solution.cost[i] != g.infinity();
    if (!reachable) continue;
    const auto path = extract_path(solution, i);
    if (!path) return fail(i, "finite cost but PTN chain does not reach the destination");
    const Weight traced = path_cost(g, *path);
    if (traced != solution.cost[i]) {
      std::ostringstream os;
      os << "traced path costs " << traced << " but SOW claims " << solution.cost[i];
      return fail(i, os.str());
    }
  }
  return VerifyResult{};
}

}  // namespace ppa::graph
