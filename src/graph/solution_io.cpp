#include "graph/solution_io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace ppa::graph {

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw util::ParseError("malformed ppa-solution input: " + detail);
}

bool next_token(std::istream& is, std::string& token) {
  while (is >> token) {
    if (token[0] != '#') return true;
    std::string rest;
    std::getline(is, rest);
  }
  return false;
}

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') malformed(what + " is not a non-negative integer: " + token);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > (std::uint64_t{1} << 53)) malformed(what + " is implausibly large: " + token);
  }
  return value;
}

}  // namespace

void write_solution(std::ostream& os, const McpSolution& solution, Weight infinity) {
  PPA_REQUIRE(solution.cost.size() == solution.next.size(),
              "solution vectors disagree on size");
  os << "ppa-solution 1\n";
  os << "n " << solution.cost.size() << " d " << solution.destination << '\n';
  for (std::size_t i = 0; i < solution.cost.size(); ++i) {
    os << "v " << i << ' ';
    if (solution.cost[i] == infinity) {
      os << "inf";
    } else {
      os << solution.cost[i];
    }
    os << ' ' << solution.next[i] << '\n';
  }
}

std::string solution_to_string(const McpSolution& solution, Weight infinity) {
  std::ostringstream os;
  write_solution(os, solution, infinity);
  return os.str();
}

McpSolution read_solution(std::istream& is, Weight infinity) {
  std::string token;
  if (!next_token(is, token) || token != "ppa-solution") malformed("missing header");
  if (!next_token(is, token) || token != "1") malformed("unsupported format version");
  if (!next_token(is, token) || token != "n") malformed("missing size line");
  if (!next_token(is, token)) malformed("missing vertex count");
  const auto n = static_cast<std::size_t>(parse_u64(token, "vertex count"));
  if (n == 0) malformed("vertex count must be positive");
  if (!next_token(is, token) || token != "d") malformed("missing destination marker");
  if (!next_token(is, token)) malformed("missing destination");
  const auto d = static_cast<Vertex>(parse_u64(token, "destination"));
  if (d >= n) malformed("destination out of range");

  McpSolution solution;
  solution.destination = d;
  solution.cost.assign(n, infinity);
  solution.next.assign(n, d);
  std::vector<bool> seen(n, false);

  while (next_token(is, token)) {
    if (token != "v") malformed("expected vertex line, got: " + token);
    std::string idx_tok;
    std::string cost_tok;
    std::string next_tok;
    if (!next_token(is, idx_tok) || !next_token(is, cost_tok) || !next_token(is, next_tok)) {
      malformed("truncated vertex line");
    }
    const auto i = static_cast<std::size_t>(parse_u64(idx_tok, "vertex index"));
    if (i >= n) malformed("vertex index out of range");
    if (seen[i]) malformed("duplicate vertex line");
    seen[i] = true;
    if (cost_tok == "inf") {
      solution.cost[i] = infinity;
    } else {
      const auto cost = parse_u64(cost_tok, "cost");
      if (cost > infinity) malformed("cost exceeds the field's infinity");
      solution.cost[i] = static_cast<Weight>(cost);
    }
    const auto nxt = static_cast<Vertex>(parse_u64(next_tok, "next pointer"));
    if (nxt >= n) malformed("next pointer out of range");
    solution.next[i] = nxt;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) malformed("missing vertex line for vertex " + std::to_string(i));
  }
  return solution;
}

McpSolution solution_from_string(const std::string& text, Weight infinity) {
  std::istringstream is(text);
  return read_solution(is, infinity);
}

void save_solution(const std::string& path, const McpSolution& solution, Weight infinity) {
  std::ofstream os(path);
  if (!os) throw util::ParseError("cannot open for writing: " + path);
  write_solution(os, solution, infinity);
  if (!os) throw util::ParseError("write failed: " + path);
}

McpSolution load_solution(const std::string& path, Weight infinity) {
  std::ifstream is(path);
  if (!is) throw util::ParseError("cannot open for reading: " + path);
  return read_solution(is, infinity);
}

}  // namespace ppa::graph
