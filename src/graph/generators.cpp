#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ppa::graph {

namespace {

/// Validates the range against the field and draws one weight from it.
class WeightDrawer {
 public:
  WeightDrawer(const util::HField& field, WeightRange range, util::Rng& rng)
      : range_(range), rng_(rng) {
    PPA_REQUIRE(range.lo <= range.hi, "weight range is inverted");
    PPA_REQUIRE(range.hi <= field.max_finite(),
                "weight range collides with the field's infinity");
  }

  Weight operator()() {
    return static_cast<Weight>(
        rng_.between(static_cast<std::int64_t>(range_.lo), static_cast<std::int64_t>(range_.hi)));
  }

 private:
  WeightRange range_;
  util::Rng& rng_;
};

}  // namespace

WeightMatrix random_digraph(std::size_t n, int bits, double edge_probability,
                            WeightRange range, util::Rng& rng) {
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.chance(edge_probability)) g.set(i, j, draw());
    }
  }
  return g;
}

WeightMatrix random_reachable_digraph(std::size_t n, int bits, double edge_probability,
                                      WeightRange range, Vertex destination, util::Rng& rng) {
  PPA_REQUIRE(destination < n, "destination out of range");
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);

  // Random in-tree toward the destination: attach the vertices in a random
  // order, each to a uniformly chosen already-attached vertex, so every
  // vertex has a directed path to `destination`.
  std::vector<Vertex> order;
  order.reserve(n - 1);
  for (Vertex v = 0; v < n; ++v) {
    if (v != destination) order.push_back(v);
  }
  rng.shuffle(order);
  std::vector<Vertex> attached{destination};
  attached.reserve(n);
  for (const Vertex v : order) {
    const Vertex parent = attached[static_cast<std::size_t>(rng.below(attached.size()))];
    g.set(v, parent, draw());
    attached.push_back(v);
  }

  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i == j || g.has_edge(i, j)) continue;
      if (rng.chance(edge_probability)) g.set(i, j, draw());
    }
  }
  return g;
}

WeightMatrix directed_ring(std::size_t n, int bits, WeightRange range, util::Rng& rng) {
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);
  for (Vertex i = 0; i < n; ++i) g.set(i, (i + 1) % n, draw());
  return g;
}

WeightMatrix directed_path(std::size_t n, int bits, WeightRange range, util::Rng& rng) {
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);
  for (Vertex i = 0; i + 1 < n; ++i) g.set(i, i + 1, draw());
  return g;
}

WeightMatrix layered_dag(std::size_t layers, std::size_t width, std::size_t fan_out, int bits,
                         WeightRange range, util::Rng& rng) {
  PPA_REQUIRE(layers >= 1 && width >= 1, "layered_dag needs at least one layer and one column");
  PPA_REQUIRE(fan_out >= 1 && fan_out <= width, "fan_out must be in [1, width]");
  const std::size_t n = layers * width + 1;
  const Vertex sink = n - 1;
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);

  const auto vertex_at = [width](std::size_t layer, std::size_t slot) {
    return layer * width + slot;
  };

  for (std::size_t layer = 0; layer < layers; ++layer) {
    const bool last = (layer + 1 == layers);
    for (std::size_t slot = 0; slot < width; ++slot) {
      const Vertex from = vertex_at(layer, slot);
      if (last) {
        g.set(from, sink, draw());
        continue;
      }
      const auto targets = util::sample_without_replacement(rng, width, fan_out);
      for (const std::size_t t : targets) g.set(from, vertex_at(layer + 1, t), draw());
    }
  }
  return g;
}

namespace {

WeightMatrix grid_like(std::size_t rows, std::size_t cols, int bits, WeightRange range,
                       util::Rng& rng, bool wrap) {
  PPA_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  WeightMatrix g(rows * cols, bits);
  WeightDrawer draw(g.field(), range, rng);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const Vertex v = id(r, c);
      const auto connect = [&](std::size_t rr, std::size_t cc) {
        const Vertex u = id(rr, cc);
        if (u == v) return;
        g.set(v, u, draw());
        g.set(u, v, draw());
      };
      if (c + 1 < cols) {
        connect(r, c + 1);
      } else if (wrap && cols > 2) {
        connect(r, 0);
      }
      if (r + 1 < rows) {
        connect(r + 1, c);
      } else if (wrap && rows > 2) {
        connect(0, c);
      }
    }
  }
  return g;
}

}  // namespace

WeightMatrix grid_mesh(std::size_t rows, std::size_t cols, int bits, WeightRange range,
                       util::Rng& rng) {
  return grid_like(rows, cols, bits, range, rng, /*wrap=*/false);
}

WeightMatrix torus_mesh(std::size_t rows, std::size_t cols, int bits, WeightRange range,
                        util::Rng& rng) {
  return grid_like(rows, cols, bits, range, rng, /*wrap=*/true);
}

WeightMatrix star(std::size_t n, int bits, Vertex center, WeightRange range, util::Rng& rng) {
  PPA_REQUIRE(center < n, "star center out of range");
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);
  for (Vertex v = 0; v < n; ++v) {
    if (v == center) continue;
    g.set(v, center, draw());
    g.set(center, v, draw());
  }
  return g;
}

WeightMatrix complete(std::size_t n, int bits, WeightRange range, util::Rng& rng) {
  return random_digraph(n, bits, 1.0, range, rng);
}

WeightMatrix banded(std::size_t n, int bits, std::size_t bandwidth, WeightRange range,
                    util::Rng& rng) {
  PPA_REQUIRE(bandwidth >= 1, "bandwidth must be positive");
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::size_t gap = (i > j) ? i - j : j - i;
      if (gap <= bandwidth) g.set(i, j, draw());
    }
  }
  return g;
}

WeightMatrix geometric(std::size_t n, int bits, double radius, WeightRange range,
                       util::Rng& rng) {
  PPA_REQUIRE(radius > 0.0, "geometric radius must be positive");
  WeightMatrix g(n, bits);
  PPA_REQUIRE(range.lo <= range.hi && range.hi <= g.field().max_finite(),
              "weight range collides with the field's infinity");
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t v = 0; v < n; ++v) {
    xs[v] = rng.uniform();
    ys[v] = rng.uniform();
  }
  const double span = static_cast<double>(range.hi - range.lo);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist > radius) continue;
      const double scaled = static_cast<double>(range.lo) + span * (dist / radius);
      g.set(i, j, static_cast<Weight>(std::lround(scaled)));
    }
  }
  return g;
}

WeightMatrix ring_of_cliques(std::size_t cliques, std::size_t clique_size, int bits,
                             WeightRange range, util::Rng& rng) {
  PPA_REQUIRE(cliques >= 1 && clique_size >= 1,
              "ring_of_cliques needs at least one clique of one vertex");
  const std::size_t n = cliques * clique_size;
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);
  for (std::size_t k = 0; k < cliques; ++k) {
    const Vertex base = k * clique_size;
    for (std::size_t a = 0; a < clique_size; ++a) {
      for (std::size_t b = 0; b < clique_size; ++b) {
        if (a == b) continue;
        g.set(base + a, base + b, draw());
      }
    }
    // One gateway per clique: last slot of k into first slot of k+1.
    if (cliques > 1) {
      const Vertex gateway = base + clique_size - 1;
      const Vertex entry = ((k + 1) % cliques) * clique_size;
      g.set(gateway, entry, draw());
    }
  }
  return g;
}

WeightMatrix power_law(std::size_t n, int bits, std::size_t attach_edges,
                       double back_probability, WeightRange range, util::Rng& rng) {
  PPA_REQUIRE(n >= 1, "power_law needs at least one vertex");
  PPA_REQUIRE(attach_edges >= 1, "power_law needs at least one attachment edge");
  WeightMatrix g(n, bits);
  WeightDrawer draw(g.field(), range, rng);

  // Degree-proportional sampling via the endpoint-multiset trick: every
  // edge pushes both ends, so a uniform draw from `endpoints` is a draw
  // proportional to degree. A vertex's own endpoints are pushed only
  // after its targets are chosen, so targets are always EARLIER vertices
  // and the attachment edges form a DAG into vertex 0.
  std::vector<Vertex> endpoints;
  for (Vertex v = 1; v < n; ++v) {
    const std::size_t m = std::min<std::size_t>(attach_edges, v);
    std::vector<Vertex> chosen;
    chosen.reserve(m);
    for (std::size_t e = 0; e < m; ++e) {
      Vertex target = n;  // sentinel: not yet valid
      // A few preferential draws, then a deterministic uniform fallback
      // so the edge count per vertex is exact.
      for (int attempt = 0; attempt < 4 && target == n; ++attempt) {
        const Vertex candidate = endpoints.empty()
                                     ? static_cast<Vertex>(rng.below(v))
                                     : endpoints[rng.below(endpoints.size())];
        if (candidate < v && !g.has_edge(v, candidate)) target = candidate;
      }
      if (target == n) {
        const Vertex start = static_cast<Vertex>(rng.below(v));
        for (std::size_t off = 0; off < v && target == n; ++off) {
          const Vertex candidate = (start + off) % v;
          if (!g.has_edge(v, candidate)) target = candidate;
        }
      }
      if (target == n) break;  // v already points at every earlier vertex
      g.set(v, target, draw());
      if (rng.chance(back_probability)) g.set(target, v, draw());
      chosen.push_back(target);
    }
    for (const Vertex t : chosen) {
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

}  // namespace ppa::graph
