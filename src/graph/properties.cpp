#include "graph/properties.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace ppa::graph {

std::vector<bool> reachable_to(const WeightMatrix& g, Vertex destination) {
  const std::size_t n = g.size();
  PPA_REQUIRE(destination < n, "destination out of range");
  std::vector<bool> reachable(n, false);
  reachable[destination] = true;
  std::deque<Vertex> frontier{destination};
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop_front();
    // Predecessors of v: vertices u with a finite edge u -> v.
    for (Vertex u = 0; u < n; ++u) {
      if (!reachable[u] && u != v && g.has_edge(u, v)) {
        reachable[u] = true;
        frontier.push_back(u);
      }
    }
  }
  return reachable;
}

std::size_t max_mcp_edges(const WeightMatrix& g, Vertex destination) {
  const std::size_t n = g.size();
  PPA_REQUIRE(destination < n, "destination out of range");
  const auto& field = g.field();
  const Weight inf = g.infinity();

  // dist[i] = cost of the best path from i to destination using at most
  // `round + 1` edges (round counts completed relaxations). This mirrors
  // the machine DP: init with the 1-edge paths, relax synchronously.
  std::vector<Weight> dist(n, inf);
  for (Vertex i = 0; i < n; ++i) dist[i] = g.at(i, destination);
  dist[destination] = 0;  // diagonal-is-zero convention

  std::size_t rounds = 0;
  for (std::size_t round = 1; round < n + 1; ++round) {
    std::vector<Weight> next(dist);
    bool changed = false;
    for (Vertex i = 0; i < n; ++i) {
      if (i == destination) continue;
      Weight best = dist[i];
      for (Vertex j = 0; j < n; ++j) {
        const Weight w = (i == j) ? 0 : g.at(i, j);
        if (w == inf || dist[j] == inf) continue;
        best = std::min(best, field.add(w, dist[j]));
      }
      if (best != dist[i]) {
        next[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
    dist = std::move(next);
    rounds = round;
  }
  // `rounds` completed relaxations after the 1-edge init means the longest
  // minimal MCP has rounds + 1 edges — unless nothing ever changed, in
  // which case every reachable vertex has a 1-edge path (p == 1), or none
  // is reachable at all (p == 0).
  if (rounds == 0) {
    for (Vertex i = 0; i < n; ++i) {
      if (i != destination && dist[i] != inf) return 1;
    }
    return 0;
  }
  return rounds + 1;
}

std::size_t reachable_count(const WeightMatrix& g, Vertex destination) {
  const auto mask = reachable_to(g, destination);
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), true));
}

bool all_reach(const WeightMatrix& g, Vertex destination) {
  return reachable_count(g, destination) == g.size();
}

}  // namespace ppa::graph
