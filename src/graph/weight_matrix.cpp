#include "graph/weight_matrix.hpp"

#include <algorithm>

namespace ppa::graph {

WeightMatrix::WeightMatrix(std::size_t vertex_count, int bits)
    : n_(vertex_count), field_(bits), cells_(vertex_count * vertex_count, field_.infinity()) {
  PPA_REQUIRE(vertex_count >= 1, "a graph needs at least one vertex");
}

void WeightMatrix::set(Vertex from, Vertex to, Weight weight) {
  check_vertex(from);
  check_vertex(to);
  PPA_REQUIRE(field_.representable(weight), "weight does not fit in the h-bit field");
  cells_[from * n_ + to] = weight;
}

void WeightMatrix::set_min(Vertex from, Vertex to, Weight weight) {
  check_vertex(from);
  check_vertex(to);
  PPA_REQUIRE(field_.representable(weight), "weight does not fit in the h-bit field");
  Weight& cell = cells_[from * n_ + to];
  cell = std::min(cell, weight);
}

std::size_t WeightMatrix::edge_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(),
                    [inf = infinity()](Weight w) { return w != inf; }));
}

std::vector<Edge> WeightMatrix::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count());
  for (Vertex i = 0; i < n_; ++i) {
    for (Vertex j = 0; j < n_; ++j) {
      const Weight w = cells_[i * n_ + j];
      if (w != infinity()) result.push_back(Edge{i, j, w});
    }
  }
  return result;
}

std::size_t WeightMatrix::out_degree(Vertex v) const {
  const auto r = row(v);
  return static_cast<std::size_t>(
      std::count_if(r.begin(), r.end(), [inf = infinity()](Weight w) { return w != inf; }));
}

WeightMatrix WeightMatrix::with_bits(int bits) const {
  WeightMatrix result(n_, bits);
  for (Vertex i = 0; i < n_; ++i) {
    for (Vertex j = 0; j < n_; ++j) {
      const Weight w = at(i, j);
      if (w == infinity()) continue;  // stays the new field's infinity
      PPA_REQUIRE(result.field().representable(w) && w != result.infinity(),
                  "finite weight not representable in the narrower field");
      result.set(i, j, w);
    }
  }
  return result;
}

WeightMatrix WeightMatrix::transposed() const {
  WeightMatrix result(n_, field_.bits());
  for (Vertex i = 0; i < n_; ++i) {
    for (Vertex j = 0; j < n_; ++j) {
      result.cells_[j * n_ + i] = cells_[i * n_ + j];
    }
  }
  return result;
}

}  // namespace ppa::graph
