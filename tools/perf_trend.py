#!/usr/bin/env python3
"""Perf trend: summarize the drift across an ordered series of BENCH records.

Usage:
    tools/perf_trend.py [--out REPORT.md] [--fail-on-drift PCT] FILE [FILE ...]

Each FILE is a JSON array of perf records in the BENCH_e6.json format
(tools/perf_gate.py documents the schema); the files are taken in the
order given, oldest first — e.g. the committed baseline followed by a
fresh run, or a whole directory of dated snapshots.  Where the gate is a
binary pass/fail against ONE baseline, the trend report shows the
*trajectory*: per configuration key (workload, backend, n, host_threads,
batch_width, active_panels — the gate's key, with the same batch_width=1
and active_panels=1 defaults for old records), the first and last
wall_seconds / pe_ops_per_sec, the relative
drift between them, and the worst single-step jump along the series.

Output is a markdown table (stdout, or --out FILE for the CI artifact).
Configurations missing from some files are reported with the files they
do appear in; a simd-variant change along the series is flagged in the
notes column (dispatch changes explain wall-clock jumps).

Exit status: 0 normally, 1 when --fail-on-drift PCT is given and any
configuration's wall clock drifted more than PCT percent first -> last,
2 on malformed input.  Without --fail-on-drift the report never fails:
the hard gate is perf_gate.py; this tool is the context around it.
"""

import json
import sys

KEY_FIELDS = ("workload", "backend", "n", "host_threads", "batch_width",
              "active_panels")
KEY_DEFAULTS = {"batch_width": 1, "active_panels": 1}


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_trend: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, list):
        print(f"perf_trend: {path}: expected a JSON array of records", file=sys.stderr)
        sys.exit(2)
    records = {}
    for record in data:
        try:
            key = tuple(
                record[field] if field not in KEY_DEFAULTS
                else record.get(field, KEY_DEFAULTS[field])
                for field in KEY_FIELDS)
            float(record["wall_seconds"])
        except (TypeError, KeyError) as err:
            print(f"perf_trend: {path}: malformed record {record!r}: missing {err}",
                  file=sys.stderr)
            sys.exit(2)
        if key in records:
            print(f"perf_trend: {path}: duplicate configuration {key}", file=sys.stderr)
            sys.exit(2)
        records[key] = record
    return records


def describe(key):
    return "/".join(str(part) for part in key)


def pct(first, last):
    """Relative change first -> last as a signed percentage string."""
    if first <= 0:
        return "n/a"
    return f"{100.0 * (last - first) / first:+.1f}%"


def trend_rows(paths, series):
    """One row per configuration key seen anywhere in the series."""
    keys = sorted({key for records in series for key in records})
    rows = []
    for key in keys:
        points = [(path, records[key]) for path, records in zip(paths, series)
                  if key in records]
        walls = [float(r["wall_seconds"]) for _, r in points]
        notes = []
        if len(points) < len(paths):
            present = ", ".join(p for p, _ in points)
            notes.append(f"only in {present}")
        simds = [r.get("simd") for _, r in points if r.get("simd") is not None]
        if len(set(simds)) > 1:
            notes.append("simd " + " -> ".join(dict.fromkeys(simds)))
        steps = [r.get("simd_steps") for _, r in points]
        if len(set(steps)) > 1:
            notes.append("simd_steps changed (workload changed; refresh baseline)")

        worst_jump = 0.0
        for prev, cur in zip(walls, walls[1:]):
            if prev > 0:
                worst_jump = max(worst_jump, (cur - prev) / prev)

        ops = [r.get("pe_ops_per_sec") for _, r in points]
        have_ops = all(isinstance(o, (int, float)) for o in ops) and len(ops) > 0
        rows.append({
            "key": key,
            "wall_first": walls[0],
            "wall_last": walls[-1],
            "wall_drift": pct(walls[0], walls[-1]),
            "worst_jump": worst_jump,
            "ops_first": float(ops[0]) if have_ops else None,
            "ops_last": float(ops[-1]) if have_ops else None,
            "ops_drift": pct(float(ops[0]), float(ops[-1])) if have_ops else "n/a",
            "notes": "; ".join(notes),
        })
    return rows


def render_markdown(paths, rows):
    lines = ["# Perf trend", ""]
    lines.append(f"Series ({len(paths)} file(s), oldest first): " +
                 ", ".join(f"`{p}`" for p in paths))
    lines.append("")
    lines.append("| configuration | wall first | wall last | drift | worst step "
                 "| ops first | ops last | ops drift | notes |")
    lines.append("|---|---|---|---|---|---|---|---|---|")
    for row in rows:
        ops_first = f"{row['ops_first']:.3e}" if row["ops_first"] is not None else "-"
        ops_last = f"{row['ops_last']:.3e}" if row["ops_last"] is not None else "-"
        lines.append(
            f"| {describe(row['key'])} "
            f"| {row['wall_first']:.4f}s | {row['wall_last']:.4f}s "
            f"| {row['wall_drift']} | {row['worst_jump']:+.1%} "
            f"| {ops_first} | {ops_last} | {row['ops_drift']} "
            f"| {row['notes']} |")
    lines.append("")
    return "\n".join(lines) + "\n"


def main(argv):
    args = argv[1:]
    out_path = None
    fail_on_drift = None
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--out":
            if i + 1 >= len(args):
                print("perf_trend: --out needs a file argument", file=sys.stderr)
                return 2
            out_path = args[i + 1]
            i += 2
        elif args[i] == "--fail-on-drift":
            if i + 1 >= len(args):
                print("perf_trend: --fail-on-drift needs a percentage", file=sys.stderr)
                return 2
            try:
                fail_on_drift = float(args[i + 1])
            except ValueError:
                print("perf_trend: --fail-on-drift must be a number", file=sys.stderr)
                return 2
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    series = [load_records(path) for path in paths]
    rows = trend_rows(paths, series)
    report = render_markdown(paths, rows)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(report)
        print(f"perf_trend: wrote {out_path} ({len(rows)} configuration(s))")
    else:
        sys.stdout.write(report)

    if fail_on_drift is not None:
        drifted = [
            row for row in rows
            if row["wall_first"] > 0 and
            100.0 * (row["wall_last"] - row["wall_first"]) / row["wall_first"]
            > fail_on_drift
        ]
        for row in drifted:
            print(f"perf_trend: DRIFT {describe(row['key'])}: wall "
                  f"{row['wall_first']:.4f}s -> {row['wall_last']:.4f}s "
                  f"({row['wall_drift']}) exceeds {fail_on_drift:.1f}%")
        if drifted:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
