#!/usr/bin/env python3
"""Perf gate: compare a fresh BENCH_e6.json against the committed baseline.

Usage:
    tools/perf_gate.py BASELINE.json CURRENT.json

Both files are JSON arrays of perf records sharing the metrics schema's
run-field names (workload, backend, n, host_threads, simd_steps,
wall_seconds, pe_ops_per_sec) — the format bench_e6_sim_throughput writes
via bench::write_perf_records.

Records are matched on the configuration key (workload, backend, n,
host_threads, batch_width, active_panels); a record without a batch_width
field counts as batch_width 1, and one without an active_panels field as
active_panels 1, so baselines predating multi-destination batching
(docs/batching.md) and the active-panel schedule (docs/tiling.md) keep
matching.  For every matched pair the gate fails when

    current.wall_seconds > baseline.wall_seconds * (1 + threshold)

where threshold defaults to 0.15 (15 %) and can be overridden with the
PERF_GATE_THRESHOLD environment variable (a fraction, e.g. 0.25).

The pe_ops_per_sec throughput check FAILS the gate too: the gate checks
current < baseline / (1 + ops_threshold), where ops_threshold defaults to
the wall-clock threshold and can be loosened independently with
PERF_GATE_OPS_THRESHOLD (throughput derives from wall clock and
simd_steps, so it flags the same regressions plus step-count drift; it
soaked as warn-only and its noise tracks the wall-clock check's).  A
record missing pe_ops_per_sec skips that check silently (older baselines
predate the field).

Records may carry a "simd" field naming the dispatched kernel variant
(scalar/avx2/avx512, or none on the word backend).  It is informational
and deliberately NOT part of the configuration key — a baseline recorded
on an AVX-512 host still matches a current run on an AVX2 host — but a
variant mismatch is reported alongside a failing comparison so dispatch
changes are traceable from the gate output.

A changed simd_steps count for a matched configuration is reported as a
warning, not a failure: step counts are workload properties, and a step
change means the workload itself changed, so the wall-clock comparison is
apples-to-oranges — the baseline should be refreshed (tools/run_benchmarks.sh)
in the same commit.  Configurations present in only one file are warned
about and skipped.

Exit status: 0 when every matched configuration is within the threshold,
1 on any regression, 2 on malformed input.
"""

import json
import os
import sys

KEY_FIELDS = ("workload", "backend", "n", "host_threads", "batch_width",
              "active_panels")

# Key fields absent from older records, with the value they imply.
KEY_DEFAULTS = {"batch_width": 1, "active_panels": 1}


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, list):
        print(f"perf_gate: {path}: expected a JSON array of records", file=sys.stderr)
        sys.exit(2)
    records = {}
    for record in data:
        try:
            key = tuple(
                record[field] if field not in KEY_DEFAULTS
                else record.get(field, KEY_DEFAULTS[field])
                for field in KEY_FIELDS)
            float(record["wall_seconds"])
        except (TypeError, KeyError) as err:
            print(f"perf_gate: {path}: malformed record {record!r}: missing {err}",
                  file=sys.stderr)
            sys.exit(2)
        if key in records:
            print(f"perf_gate: {path}: duplicate configuration {key}", file=sys.stderr)
            sys.exit(2)
        records[key] = record
    return records


def describe(key):
    return "/".join(str(part) for part in key)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        threshold = float(os.environ.get("PERF_GATE_THRESHOLD", "0.15"))
    except ValueError:
        print("perf_gate: PERF_GATE_THRESHOLD must be a number", file=sys.stderr)
        return 2
    if threshold < 0:
        print("perf_gate: PERF_GATE_THRESHOLD must be >= 0", file=sys.stderr)
        return 2
    try:
        ops_threshold = float(os.environ.get("PERF_GATE_OPS_THRESHOLD", str(threshold)))
    except ValueError:
        print("perf_gate: PERF_GATE_OPS_THRESHOLD must be a number", file=sys.stderr)
        return 2
    if ops_threshold < 0:
        print("perf_gate: PERF_GATE_OPS_THRESHOLD must be >= 0", file=sys.stderr)
        return 2

    baseline = load_records(argv[1])
    current = load_records(argv[2])

    for key in sorted(set(baseline) - set(current)):
        print(f"perf_gate: warning: {describe(key)} in baseline only — skipped")
    for key in sorted(set(current) - set(baseline)):
        print(f"perf_gate: warning: {describe(key)} in current only — skipped")

    regressions = 0
    compared = 0
    for key in sorted(set(baseline) & set(current)):
        base, cur = baseline[key], current[key]
        if base.get("simd_steps") != cur.get("simd_steps"):
            print(f"perf_gate: warning: {describe(key)}: simd_steps changed "
                  f"{base.get('simd_steps')} -> {cur.get('simd_steps')} — the workload "
                  f"itself changed; refresh the baseline")
        base_wall = float(base["wall_seconds"])
        cur_wall = float(cur["wall_seconds"])
        ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
        regressed = False
        verdict = "ok"
        if cur_wall > base_wall * (1 + threshold):
            verdict = "REGRESSION"
            regressed = True
        compared += 1
        print(f"perf_gate: {describe(key)}: wall {base_wall:.4f}s -> {cur_wall:.4f}s "
              f"({ratio:.2f}x baseline) [{verdict}]")

        # Throughput check, hard-failing: see the module docstring.
        try:
            base_ops = float(base["pe_ops_per_sec"])
            cur_ops = float(cur["pe_ops_per_sec"])
        except (TypeError, KeyError, ValueError):
            regressions += regressed
            continue
        if base_ops > 0 and cur_ops < base_ops / (1 + ops_threshold):
            regressed = True
            detail = ""
            if base.get("simd") != cur.get("simd"):
                detail = (f" (simd variant changed: {base.get('simd')} -> "
                          f"{cur.get('simd')})")
            print(f"perf_gate: {describe(key)}: pe_ops_per_sec dropped "
                  f"{base_ops:.3e} -> {cur_ops:.3e} "
                  f"({cur_ops / base_ops:.2f}x baseline) — throughput degradation "
                  f"beyond {ops_threshold:.0%} [REGRESSION]{detail}")
        regressions += regressed

    if compared == 0:
        print("perf_gate: no overlapping configurations to compare", file=sys.stderr)
        return 2
    limit = f"{threshold:.0%}"
    if regressions:
        print(f"perf_gate: FAIL — {regressions}/{compared} configuration(s) regressed "
              f"more than {limit} vs baseline")
        return 1
    print(f"perf_gate: PASS — {compared} configuration(s) within {limit} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
