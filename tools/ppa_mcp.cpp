// ppa_mcp — command-line driver for the library.
//
//   ppa_mcp gen    --family random --n 16 --seed 1 --out graph.txt [...]
//   ppa_mcp solve  --graph graph.txt --dest 0 --out solution.txt
//                  [--model ppa|gcn|mesh|hypercube] [--backend word|bitplane]
//                  [--array-side P] [--active-panels on|off] [--trace]
//                  [--faults <spec>] [--verify]
//                  [--max-retries N] [--recovery retry|tmr|ecc|tmr+retry]
//                  [--checked] [--metrics-out FILE] [--prom-out FILE]
//                  [--trace-chrome FILE] [--stats]
//                  [--snapshot-every N --snapshot-out FILE]
//   ppa_mcp verify --graph graph.txt --solution solution.txt --dest 0
//   ppa_mcp info   --graph graph.txt [--dest 0]
//   ppa_mcp closure --graph graph.txt [--backend word|bitplane]
//                  [--array-side P] [--active-panels on|off]
//   ppa_mcp allpairs --graph graph.txt [--array-side P] [--batch-width K]
//                  [--active-panels on|off]
//                  [--faults <spec>] [--verify] [--max-retries N]
//                  [--recovery retry|tmr|ecc|tmr+retry] [--checked]
//                  [--metrics-out FILE] [--prom-out FILE]
//                  [--trace-chrome FILE] [--stats]
//   ppa_mcp eccentricity --graph graph.txt [--backend word|bitplane]
//                  [--array-side P] [--active-panels on|off]
//
// --array-side P (ppa only) virtualizes the run on a P x P physical array
// (P < n sweeps the weight matrix in panels, docs/tiling.md); 0 = full
// array. Solutions are bit-identical either way; fault coordinates in
// --faults address the PHYSICAL array, so they must be < P.
// --active-panels off (tiled runs only) disables the activity-driven panel
// schedule and restores the dense every-panel sweep; results are
// bit-identical either way, only the PanelIo charge differs.
// --batch-width K (allpairs, bitplane backend) solves K destinations per
// shared machine pass (docs/batching.md); rows, iteration counts and
// outcomes are bit-identical to K=1, only the step profile changes.
//
// Observability (docs/observability.md): --metrics-out writes the
// ppa.metrics.v1 JSON dump, --prom-out a Prometheus text exposition,
// --trace-chrome a Perfetto-loadable Chrome trace, --stats a human summary
// with the per-category step/wall attribution table; --snapshot-every N
// (solve only) streams a metrics snapshot to --snapshot-out as one JSON
// line per N relaxation iterations. When any fault events were recorded
// the tool prints a one-line kind tally on stderr.
//
// The fault spec grammar is sim/fault_model.hpp's, e.g.
// "dead:2,3;stuck-bit:row,1,0,1;random:7,4" (docs/robustness.md).
//
// Everything the subcommands do is library functionality; the tool only
// parses flags and moves files, so it stays thin and fully covered by the
// library's test suite (plus the tool-level integration test). Any
// ParseError / ContractError escaping a subcommand is reported as a
// one-line stderr error with exit code 2 — never an uncaught abort.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baseline/gcn.hpp"
#include "baseline/hypercube.hpp"
#include "baseline/mesh_mcp.hpp"
#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "graph/solution_io.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/closure.hpp"
#include "mcp/mcp.hpp"
#include "mcp/tiled.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/collector.hpp"
#include "obs/export.hpp"
#include "sim/fault_model.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

using namespace ppa;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ppa_mcp <gen|solve|verify|info|closure|allpairs|eccentricity> [flags]\n"
               "run `ppa_mcp <subcommand> --help` for the flag list\n");
  return 2;
}

/// Parses --backend. Returns false (after printing to stderr) on an
/// unknown name; both backends produce bit-identical results and step
/// counts, so the flag only selects the host execution strategy.
bool parse_backend(const std::string& name, sim::ExecBackend& out) {
  if (name == "word") {
    out = sim::ExecBackend::Words;
    return true;
  }
  if (name == "bitplane") {
    out = sim::ExecBackend::BitPlane;
    return true;
  }
  std::fprintf(stderr, "error: unknown --backend '%s' (expected word|bitplane)\n",
               name.c_str());
  return false;
}

/// Robustness flags shared by `solve` and `allpairs`.
void add_robustness_flags(util::CliParser& cli) {
  cli.flag("faults", "fault injection spec, e.g. 'dead:1,2;stuck-bit:row,0,3,1'", "");
  cli.flag("max-retries", "solve retries on a fault-free word-backend oracle", "0");
  cli.flag("recovery",
           "fault handling: retry (verify-then-retry), tmr (3x voted bus cycles), "
           "ecc (parity planes, bitplane backend only), tmr+retry",
           "retry");
  cli.bool_flag("verify", "check each solution against the host certificate checker");
  cli.bool_flag("checked", "record bus contention / undriven reads as fault events");
}

/// Reads --array-side into `options`. Returns false (after a one-line
/// stderr message) on a negative value; 0 keeps the full-array path.
bool read_array_side(const util::CliParser& cli, mcp::Options& options) {
  const std::int64_t side = cli.get_int("array-side");
  if (side < 0) {
    std::fprintf(stderr, "error: --array-side must be >= 0 (0 = full array)\n");
    return false;
  }
  options.array_side = static_cast<std::size_t>(side);
  return true;
}

/// Parses --active-panels ("on" | "off") into `out`. Returns false (after
/// a one-line stderr message) on anything else.
bool parse_active_panels(const std::string& value, bool& out) {
  if (value == "on") {
    out = true;
    return true;
  }
  if (value == "off") {
    out = false;
    return true;
  }
  std::fprintf(stderr, "error: --active-panels must be on or off (got '%s')\n",
               value.c_str());
  return false;
}

/// Reads the shared robustness flags back into `options`. Returns false
/// (after a one-line stderr message) on a bad retry count; a malformed
/// --faults spec throws util::ParseError, which main() turns into exit 2.
/// Fault coordinates address the machine actually built, so with
/// --array-side they validate against the PHYSICAL side, not n.
bool read_robustness_flags(const util::CliParser& cli, const graph::WeightMatrix& g,
                           mcp::Options& options) {
  const std::int64_t retries = cli.get_int("max-retries");
  if (retries < 0) {
    std::fprintf(stderr, "error: --max-retries must be >= 0\n");
    return false;
  }
  options.max_retries = static_cast<std::size_t>(retries);
  options.verify = cli.get_bool("verify");
  options.checked = cli.get_bool("checked");
  const std::string recovery = cli.get_string("recovery");
  if (recovery == "retry") {
    options.recovery = mcp::RecoveryPolicy::Retry;
  } else if (recovery == "tmr") {
    options.recovery = mcp::RecoveryPolicy::Tmr;
  } else if (recovery == "ecc") {
    options.recovery = mcp::RecoveryPolicy::Ecc;
  } else if (recovery == "tmr+retry") {
    options.recovery = mcp::RecoveryPolicy::TmrThenRetry;
  } else {
    std::fprintf(stderr,
                 "error: --recovery must be retry, tmr, ecc or tmr+retry (got '%s')\n",
                 recovery.c_str());
    return false;
  }
  if (options.recovery == mcp::RecoveryPolicy::Ecc &&
      options.backend != sim::ExecBackend::BitPlane) {
    std::fprintf(stderr,
                 "error: --recovery ecc rides the bit-plane bus engine; it requires "
                 "--backend bitplane\n");
    return false;
  }
  const std::string spec = cli.get_string("faults");
  if (!spec.empty()) {
    const std::size_t side = mcp::effective_array_side(options, g.size());
    options.faults = sim::FaultModel::parse(spec, side, g.field().bits());
  }
  return true;
}

/// Observability flags shared by `solve` and `allpairs`
/// (docs/observability.md).
void add_observability_flags(util::CliParser& cli) {
  cli.flag("metrics-out", "write the ppa.metrics.v1 JSON metrics dump to this file", "");
  cli.flag("prom-out", "write a Prometheus text exposition to this file", "");
  cli.flag("trace-chrome", "write a Chrome trace_event (Perfetto) trace to this file", "");
  cli.flag("snapshot-every",
           "stream a metrics snapshot every N relaxation iterations (solve only; "
           "0 = off)",
           "0");
  cli.flag("snapshot-out", "JSONL file the periodic snapshots append to", "");
  cli.bool_flag("stats", "print a human-readable metrics summary to stdout");
}

/// The observability state one subcommand run owns: a Collector when any
/// of the observability flags asked for one, plus the streaming Chrome
/// writer and the snapshot stream.
struct Observability {
  std::unique_ptr<obs::Collector> collector;
  std::ofstream chrome_file;
  std::unique_ptr<obs::ChromeTraceWriter> chrome;
  std::ofstream snapshot_file;
  std::string metrics_path;
  std::string prom_path;
  std::string snapshot_path;
  std::uint64_t snapshot_every = 0;
  bool stats = false;

  [[nodiscard]] bool enabled() const noexcept { return collector != nullptr; }
};

/// Builds the run's observability state from the parsed flags. `live`
/// attaches the Chrome writer to the collector so instruction/span events
/// stream as they happen (single-destination solve); without it the caller
/// exports the merged span tree post hoc (all-pairs). Returns false after
/// a stderr message when the trace file cannot be opened.
bool setup_observability(const util::CliParser& cli, bool live, Observability& out) {
  out.metrics_path = cli.get_string("metrics-out");
  out.prom_path = cli.get_string("prom-out");
  out.snapshot_path = cli.get_string("snapshot-out");
  out.stats = cli.get_bool("stats");
  const std::int64_t snapshot_every = cli.get_int("snapshot-every");
  if (snapshot_every < 0) {
    std::fprintf(stderr, "error: --snapshot-every must be >= 0 (0 = off)\n");
    return false;
  }
  out.snapshot_every = static_cast<std::uint64_t>(snapshot_every);
  if (out.snapshot_every != 0 && out.snapshot_path.empty()) {
    std::fprintf(stderr, "error: --snapshot-every requires --snapshot-out\n");
    return false;
  }
  const std::string chrome_path = cli.get_string("trace-chrome");
  if (out.metrics_path.empty() && out.prom_path.empty() && chrome_path.empty() &&
      !out.stats && out.snapshot_every == 0) {
    return true;
  }
  out.collector = std::make_unique<obs::Collector>();
  if (!chrome_path.empty()) {
    out.chrome_file.open(chrome_path);
    if (!out.chrome_file) {
      std::fprintf(stderr, "error: cannot open --trace-chrome file '%s'\n",
                   chrome_path.c_str());
      return false;
    }
    out.chrome = std::make_unique<obs::ChromeTraceWriter>(out.chrome_file);
    if (live) out.collector->set_chrome(out.chrome.get());
  }
  return true;
}

/// Installs the periodic JSONL snapshot stream on the live collector
/// (solve only: snapshots fire from the per-iteration hook, which the
/// all-pairs driver feeds into per-destination collectors instead). `run`
/// is the context known before the run; simd_steps / wall_seconds stay 0
/// in snapshots — the final dump carries the totals. Returns false after a
/// stderr message when the file cannot be opened.
bool setup_snapshots(Observability& o, const obs::RunInfo& run) {
  if (o.snapshot_every == 0) return true;
  o.snapshot_file.open(o.snapshot_path);
  if (!o.snapshot_file) {
    std::fprintf(stderr, "error: cannot open --snapshot-out file '%s'\n",
                 o.snapshot_path.c_str());
    return false;
  }
  o.collector->set_snapshot_hook(o.snapshot_every,
                                 [&o, run](const obs::Collector& collector) {
                                   obs::write_metrics_json(o.snapshot_file, collector, run);
                                   o.snapshot_file.flush();
                                 });
  return true;
}

/// Writes the requested artifacts. Returns 2 (after a stderr message) when
/// an output file cannot be written, 0 otherwise.
int finish_observability(Observability& o, const obs::RunInfo& run) {
  if (!o.enabled()) return 0;
  if (o.chrome != nullptr) {
    if (o.collector->chrome() == nullptr) o.collector->export_spans(*o.chrome);
    o.chrome->finish();
  }
  if (!o.metrics_path.empty()) {
    std::ofstream f(o.metrics_path);
    if (!f) {
      std::fprintf(stderr, "error: cannot open --metrics-out file '%s'\n",
                   o.metrics_path.c_str());
      return 2;
    }
    obs::write_metrics_json(f, *o.collector, run);
  }
  if (!o.prom_path.empty()) {
    std::ofstream f(o.prom_path);
    if (!f) {
      std::fprintf(stderr, "error: cannot open --prom-out file '%s'\n",
                   o.prom_path.c_str());
      return 2;
    }
    obs::write_prometheus(f, *o.collector, run);
  }
  if (o.stats) obs::write_stats_summary(std::cout, *o.collector, run);
  return 0;
}

/// One-line kind-by-kind tally on STDERR whenever a run recorded fault
/// events, e.g. "fault-events: bus_contention=12 undriven_read=3" —
/// machine-greppable regardless of what stdout reports (pinned by
/// tests/tool_errors.cmake).
void print_fault_tally(const std::vector<sim::FaultEvent>& events) {
  if (events.empty()) return;
  std::size_t tally[4] = {};
  for (const sim::FaultEvent& e : events) tally[static_cast<int>(e.kind)] += e.count;
  std::string line = "fault-events:";
  for (int k = 0; k < 4; ++k) {
    if (tally[k] == 0) continue;
    line += ' ';
    line += sim::name_of(static_cast<sim::FaultEventKind>(k));
    line += '=';
    line += std::to_string(tally[k]);
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

bool is_failure(mcp::SolveOutcome outcome) {
  return outcome == mcp::SolveOutcome::VerificationFailed ||
         outcome == mcp::SolveOutcome::NonConverged ||
         outcome == mcp::SolveOutcome::HardwareFault;
}

/// Prints the outcome / attempts / fault-event summary for one solve when
/// any robustness feature produced something worth reporting.
void print_outcome(const mcp::Result& r) {
  if (r.outcome == mcp::SolveOutcome::Unchecked && r.fault_events.empty() &&
      r.masking.votes == 0) {
    return;
  }
  std::printf("outcome=%s attempts=%zu fault-events=%zu\n", mcp::name_of(r.outcome),
              r.attempts, r.fault_events.size());
  if (r.masking.votes != 0) {
    std::printf("masking: votes=%llu corrections=%llu uncorrectable=%llu\n",
                static_cast<unsigned long long>(r.masking.votes),
                static_cast<unsigned long long>(r.masking.corrections),
                static_cast<unsigned long long>(r.masking.uncorrectable));
  }
  if (!r.verify_detail.empty()) std::printf("verify: %s\n", r.verify_detail.c_str());
  const std::size_t shown = std::min<std::size_t>(r.fault_events.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("  fault: %s\n", sim::to_string(r.fault_events[i]).c_str());
  }
  if (shown < r.fault_events.size()) {
    std::printf("  ... %zu more fault events\n", r.fault_events.size() - shown);
  }
}

int cmd_gen(int argc, const char* const* argv) {
  util::CliParser cli("generate a workload graph");
  cli.flag("family",
           "random|reachable|ring|grid|banded|geometric|complete|"
           "ring-of-cliques|power-law",
           "random");
  cli.flag("n", "vertex count (grid: side^2)", "16");
  cli.flag("bits", "word width h", "16");
  cli.flag("seed", "RNG seed", "1");
  cli.flag("density", "edge probability (random families)", "0.25");
  cli.flag("dest", "destination guaranteed reachable (family=reachable)", "0");
  cli.flag("clique-size", "vertices per clique (family=ring-of-cliques; must divide n)",
           "8");
  cli.flag("attach", "attachment edges per vertex (family=power-law)", "2");
  cli.flag("back-prob", "reverse-edge probability (family=power-law)", "0.1");
  cli.flag("w-lo", "minimum edge weight", "1");
  cli.flag("w-hi", "maximum edge weight", "20");
  cli.flag("out", "output graph file", "graph.txt");
  if (!cli.parse(argc, argv)) return 2;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto bits = static_cast<int>(cli.get_int("bits"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const graph::WeightRange range{static_cast<graph::Weight>(cli.get_int("w-lo")),
                                 static_cast<graph::Weight>(cli.get_int("w-hi"))};
  const std::string family = cli.get_string("family");

  graph::WeightMatrix g = [&]() -> graph::WeightMatrix {
    if (family == "reachable") {
      return graph::random_reachable_digraph(
          n, bits, cli.get_double("density"), range,
          static_cast<graph::Vertex>(cli.get_int("dest")), rng);
    }
    if (family == "ring") return graph::directed_ring(n, bits, range, rng);
    if (family == "grid") {
      const auto side = static_cast<std::size_t>(cli.get_int("n"));
      return graph::grid_mesh(side, side, bits, range, rng);
    }
    if (family == "banded") return graph::banded(n, bits, 3, range, rng);
    if (family == "geometric") return graph::geometric(n, bits, 0.4, range, rng);
    if (family == "complete") return graph::complete(n, bits, range, rng);
    if (family == "ring-of-cliques") {
      const auto clique_size = static_cast<std::size_t>(cli.get_int("clique-size"));
      PPA_REQUIRE(clique_size >= 1 && n % clique_size == 0,
                  "--clique-size must divide --n");
      return graph::ring_of_cliques(n / clique_size, clique_size, bits, range, rng);
    }
    if (family == "power-law") {
      return graph::power_law(n, bits, static_cast<std::size_t>(cli.get_int("attach")),
                              cli.get_double("back-prob"), range, rng);
    }
    return graph::random_digraph(n, bits, cli.get_double("density"), range, rng);
  }();

  graph::save_graph(cli.get_string("out"), g);
  std::printf("wrote %s: %zu vertices, %zu edges, h = %d\n", cli.get_string("out").c_str(),
              g.size(), g.edge_count(), g.field().bits());
  return 0;
}

int cmd_solve(int argc, const char* const* argv) {
  util::CliParser cli("solve MCP on a machine model");
  cli.flag("graph", "input graph file", "graph.txt");
  cli.flag("dest", "destination vertex", "0");
  cli.flag("model", "ppa|gcn|mesh|hypercube", "ppa");
  cli.flag("backend", "host execution backend, word|bitplane (ppa only)", "word");
  cli.flag("array-side", "physical array side P; 0 = full array, P < n runs tiled (ppa only)",
           "0");
  cli.flag("active-panels",
           "activity-driven panel schedule on tiled runs, on|off (ppa only)", "on");
  cli.flag("out", "output solution file", "solution.txt");
  cli.bool_flag("trace", "print per-iteration statistics (ppa only)");
  add_robustness_flags(cli);
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 2;

  const auto g = graph::load_graph(cli.get_string("graph"));
  const auto d = static_cast<graph::Vertex>(cli.get_int("dest"));
  const std::string model = cli.get_string("model");
  if (model != "ppa" &&
      (cli.get_bool("verify") || cli.get_bool("checked") ||
       !cli.get_string("faults").empty() || cli.get_int("max-retries") != 0 ||
       cli.get_string("recovery") != "retry" ||
       cli.get_int("array-side") != 0 || cli.get_string("active-panels") != "on" ||
       !cli.get_string("metrics-out").empty() ||
       !cli.get_string("prom-out").empty() || !cli.get_string("trace-chrome").empty() ||
       cli.get_int("snapshot-every") != 0 || !cli.get_string("snapshot-out").empty() ||
       cli.get_bool("stats"))) {
    std::fprintf(stderr,
                 "error: --faults/--verify/--max-retries/--recovery/--checked/"
                 "--array-side/--active-panels and the observability flags require "
                 "--model=ppa\n");
    return 2;
  }

  graph::McpSolution solution;
  std::size_t iterations = 0;
  sim::StepCounter steps;
  int rc = 0;
  if (model == "gcn") {
    const auto r = baseline::gcn::solve(g, d);
    solution = r.solution;
    iterations = r.iterations;
    steps = r.total_steps;
  } else if (model == "mesh") {
    const auto r = baseline::mesh_solve(g, d);
    solution = r.solution;
    iterations = r.iterations;
    steps = r.total_steps;
  } else if (model == "hypercube") {
    const auto r = baseline::hypercube::minimum_cost_path(g, d);
    solution = r.solution;
    iterations = r.iterations;
    steps = r.total_steps;
  } else if (model == "ppa") {
    mcp::Options options;
    options.record_iterations = cli.get_bool("trace");
    if (!parse_backend(cli.get_string("backend"), options.backend)) return 2;
    if (!read_array_side(cli, options)) return 2;
    if (!parse_active_panels(cli.get_string("active-panels"), options.active_panels)) {
      return 2;
    }
    if (!read_robustness_flags(cli, g, options)) return 2;
    Observability obs_state;
    if (!setup_observability(cli, /*live=*/true, obs_state)) return 2;
    options.observer = obs_state.collector.get();
    obs::RunInfo snapshot_run;
    snapshot_run.workload = "mcp";
    snapshot_run.backend = cli.get_string("backend");
    snapshot_run.n = g.size();
    snapshot_run.host_threads = 1;
    snapshot_run.active_panels = options.active_panels ? 1 : 0;
    if (obs_state.enabled() && !setup_snapshots(obs_state, snapshot_run)) return 2;
    util::Stopwatch timer;
    const auto r = mcp::solve(g, d, options);
    const double wall_seconds = timer.seconds();
    solution = r.solution;
    iterations = r.iterations;
    steps = r.total_steps;
    if (cli.get_bool("trace")) {
      for (std::size_t k = 0; k < r.iteration_trace.size(); ++k) {
        std::printf("iteration %zu: %zu improved, %llu steps\n", k + 1,
                    r.iteration_trace[k].changed,
                    static_cast<unsigned long long>(r.iteration_trace[k].steps.total()));
      }
    }
    print_outcome(r);
    print_fault_tally(r.fault_events);
    obs::RunInfo run;
    run.workload = "mcp";
    run.backend = cli.get_string("backend");
    run.n = g.size();
    run.host_threads = 1;
    run.active_panels = options.active_panels ? 1 : 0;
    run.simd_steps = r.total_steps.total();
    run.wall_seconds = wall_seconds;
    const int obs_rc = finish_observability(obs_state, run);
    if (obs_rc != 0) return obs_rc;
    if (is_failure(r.outcome)) rc = 1;
  } else {
    std::fprintf(stderr, "unknown model: %s\n", model.c_str());
    return 2;
  }

  // The (possibly degraded) solution is written even on a failure outcome
  // so it can be inspected; the exit code carries the verdict.
  graph::save_solution(cli.get_string("out"), solution, g.infinity());
  std::printf("model=%s iterations=%zu %s\n", model.c_str(), iterations,
              steps.summary().c_str());
  std::printf("wrote %s\n", cli.get_string("out").c_str());
  return rc;
}

int cmd_verify(int argc, const char* const* argv) {
  util::CliParser cli("verify a solution file against a graph");
  cli.flag("graph", "input graph file", "graph.txt");
  cli.flag("solution", "input solution file", "solution.txt");
  if (!cli.parse(argc, argv)) return 2;

  const auto g = graph::load_graph(cli.get_string("graph"));
  const auto solution = graph::load_solution(cli.get_string("solution"), g.infinity());
  const auto reference = baseline::dijkstra_to(g, solution.destination);
  const auto verdict = graph::verify_solution(g, solution, reference.cost);
  if (verdict.ok) {
    std::printf("OK: solution is exact (destination %zu)\n", solution.destination);
    return 0;
  }
  std::printf("FAIL: %s\n", verdict.detail.c_str());
  return 1;
}

int cmd_info(int argc, const char* const* argv) {
  util::CliParser cli("print structural properties of a graph");
  cli.flag("graph", "input graph file", "graph.txt");
  cli.flag("dest", "destination for p / reachability (-1 = all)", "-1");
  if (!cli.parse(argc, argv)) return 2;

  const auto g = graph::load_graph(cli.get_string("graph"));
  std::printf("vertices: %zu\nedges: %zu\nword width h: %d (infinity = %u)\n", g.size(),
              g.edge_count(), g.field().bits(), g.infinity());
  const auto report = [&](graph::Vertex d) {
    std::printf("destination %zu: reachable %zu/%zu, max MCP length p = %zu\n", d,
                graph::reachable_count(g, d), g.size(), graph::max_mcp_edges(g, d));
  };
  const std::int64_t dest = cli.get_int("dest");
  if (dest >= 0) {
    report(static_cast<graph::Vertex>(dest));
  } else {
    for (graph::Vertex d = 0; d < g.size(); ++d) report(d);
  }
  return 0;
}

int cmd_allpairs(int argc, const char* const* argv) {
  util::CliParser cli("all-pairs minimum cost paths + diameter on the PPA");
  cli.flag("graph", "input graph file", "graph.txt");
  cli.flag("workers", "host threads for independent destination runs (results identical)",
           "1");
  cli.flag("backend", "host execution backend, word|bitplane", "word");
  cli.flag("array-side", "physical array side P; 0 = full array, P < n runs tiled", "0");
  cli.flag("batch-width",
           "destinations solved per machine pass (bitplane backend only; 1 = off)", "1");
  cli.flag("active-panels", "activity-driven panel schedule on tiled runs, on|off", "on");
  add_robustness_flags(cli);
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 2;

  const auto g = graph::load_graph(cli.get_string("graph"));
  mcp::AllPairsOptions options;
  const std::int64_t workers = cli.get_int("workers");
  if (workers < 1) {
    std::fprintf(stderr, "error: --workers must be >= 1\n");
    return 2;
  }
  options.workers = static_cast<std::size_t>(workers);
  const std::int64_t batch_width = cli.get_int("batch-width");
  if (batch_width < 1) {
    std::fprintf(stderr, "error: --batch-width must be >= 1\n");
    return 2;
  }
  options.mcp.batch_width = static_cast<std::size_t>(batch_width);
  if (!parse_backend(cli.get_string("backend"), options.mcp.backend)) return 2;
  if (!read_array_side(cli, options.mcp)) return 2;
  if (!parse_active_panels(cli.get_string("active-panels"), options.mcp.active_panels)) {
    return 2;
  }
  if (!read_robustness_flags(cli, g, options.mcp)) return 2;
  // Post-hoc Chrome export: the per-destination span trees are merged in
  // destination order after the (possibly threaded) run, so the artifacts
  // are identical for every --workers value.
  Observability obs_state;
  if (!setup_observability(cli, /*live=*/false, obs_state)) return 2;
  if (obs_state.snapshot_every != 0) {
    std::fprintf(stderr,
                 "error: --snapshot-every rides the live per-iteration hook; it "
                 "requires the solve subcommand\n");
    return 2;
  }
  options.mcp.observer = obs_state.collector.get();
  util::Stopwatch timer;
  const auto ap = mcp::all_pairs(g, options);
  const double wall_seconds = timer.seconds();
  std::printf("all-pairs over %zu vertices: %zu total iterations, %s\n", ap.n,
              ap.total_iterations, ap.total_steps.summary().c_str());
  const bool robust = options.mcp.verify || options.mcp.checked || !options.mcp.faults.empty();
  const std::size_t failed = ap.failed_destinations();
  if (robust) {
    std::size_t retried = 0;
    for (const std::size_t a : ap.attempts) {
      if (a > 1) ++retried;
    }
    std::size_t masked = 0;
    for (const mcp::SolveOutcome o : ap.outcomes) {
      if (o == mcp::SolveOutcome::MaskedFaults) ++masked;
    }
    std::printf("outcomes: %zu/%zu ok, %zu failed, %zu retried, %zu masked, "
                "%zu fault events\n",
                ap.n - failed, ap.n, failed, retried, masked, ap.fault_events.size());
    for (graph::Vertex dd = 0; dd < ap.n; ++dd) {
      if (is_failure(ap.outcomes[dd])) {
        std::printf("  destination %zu: %s (attempts %zu)\n", dd,
                    mcp::name_of(ap.outcomes[dd]), ap.attempts[dd]);
      }
    }
  }
  print_fault_tally(ap.fault_events);
  obs::RunInfo run;
  run.workload = "all_pairs";
  run.backend = cli.get_string("backend");
  run.n = g.size();
  run.host_threads = options.workers;
  run.batch_width = options.mcp.batch_width;
  run.active_panels = options.mcp.active_panels ? 1 : 0;
  run.simd_steps = ap.total_steps.total();
  run.wall_seconds = wall_seconds;
  const int obs_rc = finish_observability(obs_state, run);
  if (obs_rc != 0) return obs_rc;
  std::printf("diameter (max finite cost over ordered pairs): %u\n\n", ap.diameter);
  for (graph::Vertex i = 0; i < ap.n; ++i) {
    std::string line;
    for (graph::Vertex j = 0; j < ap.n; ++j) {
      char cell[12];
      if (ap.dist_at(i, j) == g.infinity()) {
        std::snprintf(cell, sizeof cell, "    .");
      } else {
        std::snprintf(cell, sizeof cell, "%5u", ap.dist_at(i, j));
      }
      line += cell;
    }
    std::printf("  %s\n", line.c_str());
  }
  // A failed destination keeps its infinity column above (graceful
  // degradation); the exit code still reports that the batch was partial.
  return failed == 0 ? 0 : 1;
}

int cmd_eccentricity(int argc, const char* const* argv) {
  util::CliParser cli("per-destination in-eccentricities on the PPA");
  cli.flag("graph", "input graph file", "graph.txt");
  cli.flag("backend", "host execution backend, word|bitplane", "word");
  cli.flag("array-side", "physical array side P; 0 = full array, P < n runs tiled", "0");
  cli.flag("active-panels", "activity-driven panel schedule on tiled runs, on|off", "on");
  if (!cli.parse(argc, argv)) return 2;

  const auto g = graph::load_graph(cli.get_string("graph"));
  mcp::Options options;
  if (!parse_backend(cli.get_string("backend"), options.backend)) return 2;
  if (!read_array_side(cli, options)) return 2;
  if (!parse_active_panels(cli.get_string("active-panels"), options.active_panels)) {
    return 2;
  }
  graph::Weight radius = g.infinity();
  graph::Weight diameter = 0;
  for (graph::Vertex d = 0; d < g.size(); ++d) {
    const auto r = mcp::solve_eccentricity(g, d, options);
    std::printf("destination %zu: in-eccentricity %u (%zu iterations)\n", d,
                r.eccentricity, r.mcp.iterations);
    radius = std::min(radius, r.eccentricity);
    diameter = std::max(diameter, r.eccentricity);
  }
  std::printf("in-radius %u, diameter %u\n", radius, diameter);
  return 0;
}

int cmd_closure(int argc, const char* const* argv) {
  util::CliParser cli("transitive closure on the PPA (boolean DP)");
  cli.flag("graph", "input graph file", "graph.txt");
  cli.flag("backend", "host execution backend, word|bitplane", "word");
  cli.flag("array-side", "physical array side P; 0 = full array, P < n runs tiled", "0");
  cli.flag("active-panels", "activity-driven panel schedule on tiled runs, on|off", "on");
  if (!cli.parse(argc, argv)) return 2;

  const auto g = graph::load_graph(cli.get_string("graph"));
  mcp::ClosureOptions options;
  if (!parse_backend(cli.get_string("backend"), options.backend)) return 2;
  const std::int64_t side = cli.get_int("array-side");
  if (side < 0) {
    std::fprintf(stderr, "error: --array-side must be >= 0 (0 = full array)\n");
    return 2;
  }
  options.array_side = static_cast<std::size_t>(side);
  if (!parse_active_panels(cli.get_string("active-panels"), options.active_panels)) {
    return 2;
  }
  const auto closure = mcp::transitive_closure(g, options);
  std::printf("transitive closure of %zu vertices (%zu total iterations, %s)\n", closure.n,
              closure.total_iterations, closure.total_steps.summary().c_str());
  for (graph::Vertex i = 0; i < closure.n; ++i) {
    std::string line;
    for (graph::Vertex j = 0; j < closure.n; ++j) line += closure.at(i, j) ? '1' : '.';
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string subcommand = argv[1];
    const int sub_argc = argc - 1;
    const char* const* sub_argv = argv + 1;
    if (subcommand == "gen") return cmd_gen(sub_argc, sub_argv);
    if (subcommand == "solve") return cmd_solve(sub_argc, sub_argv);
    if (subcommand == "verify") return cmd_verify(sub_argc, sub_argv);
    if (subcommand == "info") return cmd_info(sub_argc, sub_argv);
    if (subcommand == "closure") return cmd_closure(sub_argc, sub_argv);
    if (subcommand == "allpairs") return cmd_allpairs(sub_argc, sub_argv);
    if (subcommand == "eccentricity") return cmd_eccentricity(sub_argc, sub_argv);
    return usage();
  } catch (const std::exception& e) {
    // Unreadable graph paths (util::ParseError from load_graph), malformed
    // flag values (util::ContractError from CliParser) and malformed
    // --faults specs all land here: one-line diagnostic, exit code 2.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
