#!/usr/bin/env bash
# Refreshes the committed benchmark artifacts.
#
#   tools/run_benchmarks.sh            # tables + BENCH_e6.json at the repo root
#   BENCH_FILTER=. tools/run_benchmarks.sh   # also run the google-benchmark loops
#   BUILD_DIR=build-release tools/run_benchmarks.sh
#
# BENCH_e6.json records wall-clock throughput per configuration — both
# execution backends (word and bitplane) on the n=128 single-destination
# MCP, and the threaded all-pairs runs — so the perf trajectory is
# versioned with the code. Run on an otherwise idle machine before
# committing a perf-relevant change, and commit the refreshed file.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-build}"
# The default filter matches nothing, so only the reproduction tables run
# (they are what writes BENCH_e6.json); the microbenchmark loops are
# opt-in because they take minutes.
FILTER="${BENCH_FILTER:-_tables_only_}"

cmake -S "$ROOT" -B "$ROOT/$BUILD" >/dev/null
cmake --build "$ROOT/$BUILD" --parallel --target bench_e6_sim_throughput >/dev/null

cd "$ROOT"  # bench binaries write their JSON/CSV artifacts to the CWD
"./$BUILD/bench/bench_e6_sim_throughput" --benchmark_filter="$FILTER"
echo "refreshed $ROOT/BENCH_e6.json"
