#!/usr/bin/env bash
# Refreshes the committed benchmark artifacts.
#
#   tools/run_benchmarks.sh            # tables + BENCH_e6.json at the repo root
#   BENCH_FILTER=. tools/run_benchmarks.sh   # also run the google-benchmark loops
#   BUILD_DIR=build-release tools/run_benchmarks.sh
#   BENCH_BEST_OF=3 tools/run_benchmarks.sh  # repeats per configuration (default 6)
#
# BENCH_e6.json records wall-clock throughput per configuration — both
# execution backends (word and bitplane) on the n=128 single-destination
# MCP, and the threaded all-pairs runs — so the perf trajectory is
# versioned with the code. Run on an otherwise idle machine before
# committing a perf-relevant change, and commit the refreshed file.
#
# The build must be a Release build: the committed baseline feeds
# tools/perf_gate.py, and a RelWithDebInfo/Debug measurement would poison
# the trajectory. The script refuses to run otherwise.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-build-release}"
# The default filter matches nothing, so only the reproduction tables run
# (they are what writes BENCH_e6.json); the microbenchmark loops are
# opt-in because they take minutes.
FILTER="${BENCH_FILTER:-_tables_only_}"
# Committed baselines are best-of-N: each configuration is measured
# BENCH_BEST_OF times and the fastest repeat is recorded, which is the
# standard estimator for the noise floor on a shared host.
export PPA_BENCH_BEST_OF="${BENCH_BEST_OF:-6}"

# A fresh directory is configured as Release; an existing one keeps its
# cached build type (never silently reconfigured) and is checked below.
if [[ -f "$ROOT/$BUILD/CMakeCache.txt" ]]; then
  cmake -S "$ROOT" -B "$ROOT/$BUILD" >/dev/null
else
  cmake -S "$ROOT" -B "$ROOT/$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$ROOT/$BUILD/CMakeCache.txt")"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "error: $BUILD is configured as '${BUILD_TYPE:-<unset>}', not Release." >&2
  echo "       Benchmark baselines must come from a Release build; point BUILD_DIR" >&2
  echo "       at a fresh directory (the default build-release is configured" >&2
  echo "       automatically) or reconfigure with -DCMAKE_BUILD_TYPE=Release." >&2
  exit 1
fi

cmake --build "$ROOT/$BUILD" --parallel --target bench_e6_sim_throughput >/dev/null

cd "$ROOT"  # bench binaries write their JSON/CSV artifacts to the CWD
"./$BUILD/bench/bench_e6_sim_throughput" --benchmark_filter="$FILTER"
echo "refreshed $ROOT/BENCH_e6.json"
