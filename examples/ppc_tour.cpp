// PPC tour — a guided walk through the Polymorphic Parallel C programming
// model on a small array (the paper's Figure 1 made executable):
// parallel variables, where/elsewhere, switch-box reconfiguration,
// segmented broadcasts, the wired-OR, and the bit-serial minimum, each
// printed as the array state it produces.
//
//   ./ppc_tour [--n 6]
#include <cstdio>
#include <string>

#include "ppc/primitives.hpp"
#include "util/cli.hpp"

using namespace ppa;
using ppc::Pbool;
using ppc::Pint;
using sim::Direction;
using sim::Word;

namespace {

void show(const char* label, const Pint& value) {
  const std::size_t n = value.context().n();
  std::printf("%s\n", label);
  for (std::size_t r = 0; r < n; ++r) {
    std::string line = "  ";
    for (std::size_t c = 0; c < n; ++c) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "%4u", value.at(r, c));
      line += buffer;
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("\n");
}

void show(const char* label, const Pbool& value) {
  const std::size_t n = value.context().n();
  std::printf("%s\n", label);
  for (std::size_t r = 0; r < n; ++r) {
    std::string line = "  ";
    for (std::size_t c = 0; c < n; ++c) {
      line += value.at(r, c) ? " 1" : " .";
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Tour of the PPC programming model on a small PPA");
  cli.flag("n", "array side", "6");
  if (!cli.parse(argc, argv)) return 1;
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  sim::MachineConfig cfg;
  cfg.n = n;
  cfg.bits = 8;
  sim::Machine machine(cfg);
  ppc::Context ctx(machine);

  std::printf("=== 1. parallel variables and the ROW/COL constants ===\n\n");
  const Pint ROW = ppc::row_of(ctx);
  const Pint COL = ppc::col_of(ctx);
  Pint value(ctx, 0);
  value.store_all(ROW + COL);  // every PE computes its own r+c
  show("value = ROW + COL:", value);

  std::printf("=== 2. where / elsewhere — the SIMD activity mask ===\n\n");
  ppc::where_else(
      ctx, (ROW == COL), [&] { value = Pint(ctx, 9); },
      [&] { value = Pint(ctx, 1); });
  show("where (ROW == COL) value = 9; elsewhere value = 1:", value);

  std::printf("=== 3. switch boxes: Open PEs segment a bus and inject ===\n\n");
  const Pbool opens = (COL == static_cast<Word>(ctx.n() / 2)) | (COL == Word{0});
  show("switch setting L (1 = Open), columns 0 and n/2:", opens);
  const Pint payload = COL + Word{10};
  const Pint received = ppc::broadcast(payload, Direction::East, opens);
  show("broadcast(COL + 10, EAST, L) — each PE hears the nearest Open PE to its west\n"
       "(ring wrap-around at the row ends):",
       received);

  std::printf("=== 4. the wired-OR: a whole cluster reads a flag in one cycle ===\n\n");
  const Pbool row_end = (COL == static_cast<Word>(n - 1));
  const Pbool pull = (ROW == Word{1}) & (COL == Word{2});
  show("one PE pulls the line (row 1, col 2):", pull);
  const Pbool heard = ppc::bus_or(pull, Direction::West, row_end);
  show("bus_or(pull, WEST, COL == n-1) — all of row 1 sees the pull:", heard);

  std::printf("=== 5. the paper's bit-serial minimum ===\n\n");
  Pint data(ctx, 0);
  data.store_all(select((ROW == COL), Pint(ctx, 3), (ROW + Word{1}) + (COL + Word{7})));
  show("per-PE data (diagonal planted at 3):", data);
  const auto before = machine.steps();
  const Pint row_min = ppc::pmin(data, Direction::West, row_end);
  const auto cost = machine.steps().since(before);
  show("pmin(data, WEST, COL == n-1) — every PE of each row now holds the row minimum:",
       row_min);
  std::printf("That one min() cost %llu SIMD steps (%llu wired-OR cycles for h = 8 bits,\n"
              "independent of the cluster length).\n\n",
              static_cast<unsigned long long>(cost.total()),
              static_cast<unsigned long long>(cost.count(sim::StepCategory::BusOr)));

  std::printf("=== 6. the machine's total bill for this tour ===\n\n");
  std::printf("%s\n", machine.steps().summary().c_str());
  return 0;
}
