// Terrain navigation — minimum-cost traversal of a synthetic heightfield.
//
// A smooth fractal-ish terrain is generated; moving between adjacent cells
// costs base effort plus a climbing penalty proportional to the uphill
// height difference. The PPA computes the minimum-effort route from EVERY
// cell to a goal in one run (that is the point of the all-sources DP), and
// the example traces the route from a chosen start and renders terrain +
// route as ASCII art.
//
//   ./terrain_nav [--size 9] [--seed 7] [--goal-r 8] [--goal-c 8]
//                 [--start-r 0] [--start-c 0] [--climb 3]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/sequential.hpp"
#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"
#include "mcp/mcp.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace ppa;

namespace {

/// Value-noise heightfield in [0, 1]: a few octaves of smoothed random
/// lattices — enough structure for interesting routes, fully deterministic.
std::vector<double> make_terrain(std::size_t size, util::Rng& rng) {
  std::vector<double> height(size * size, 0.0);
  double amplitude = 1.0;
  double total_amplitude = 0.0;
  for (int octave = 0; octave < 4; ++octave) {
    const std::size_t cell = std::max<std::size_t>(1, size >> (octave + 1));
    // Random lattice.
    const std::size_t lattice_side = size / cell + 2;
    std::vector<double> lattice(lattice_side * lattice_side);
    for (auto& v : lattice) v = rng.uniform();
    // Bilinear interpolation onto the grid.
    for (std::size_t r = 0; r < size; ++r) {
      for (std::size_t c = 0; c < size; ++c) {
        const double fr = static_cast<double>(r) / static_cast<double>(cell);
        const double fc = static_cast<double>(c) / static_cast<double>(cell);
        const auto r0 = static_cast<std::size_t>(fr);
        const auto c0 = static_cast<std::size_t>(fc);
        const double tr = fr - static_cast<double>(r0);
        const double tc = fc - static_cast<double>(c0);
        const auto at = [&](std::size_t rr, std::size_t cc) {
          return lattice[rr * lattice_side + cc];
        };
        const double value = (1 - tr) * ((1 - tc) * at(r0, c0) + tc * at(r0, c0 + 1)) +
                             tr * ((1 - tc) * at(r0 + 1, c0) + tc * at(r0 + 1, c0 + 1));
        height[r * size + c] += amplitude * value;
      }
    }
    total_amplitude += amplitude;
    amplitude *= 0.5;
  }
  for (auto& h : height) h /= total_amplitude;
  return height;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Minimum-effort terrain navigation on the PPA");
  cli.flag("size", "terrain side (size^2 cells = PPA side)", "9");
  cli.flag("seed", "RNG seed", "7");
  cli.flag("goal-r", "goal row", "8");
  cli.flag("goal-c", "goal column", "8");
  cli.flag("start-r", "start row", "0");
  cli.flag("start-c", "start column", "0");
  cli.flag("climb", "climbing penalty multiplier", "3");
  if (!cli.parse(argc, argv)) return 1;

  const auto size = static_cast<std::size_t>(cli.get_int("size"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto id = [size](std::size_t r, std::size_t c) { return r * size + c; };
  const std::size_t goal = id(static_cast<std::size_t>(cli.get_int("goal-r")),
                              static_cast<std::size_t>(cli.get_int("goal-c")));
  const std::size_t start = id(static_cast<std::size_t>(cli.get_int("start-r")),
                               static_cast<std::size_t>(cli.get_int("start-c")));

  const auto height = make_terrain(size, rng);
  const double climb = cli.get_double("climb");

  // Movement costs: 1 effort flat + climb * max(0, uphill) * 20, per step.
  graph::WeightMatrix g(size * size, 16);
  const auto connect = [&](std::size_t a, std::size_t b) {
    const auto cost = [&](double from_h, double to_h) {
      const double uphill = std::max(0.0, to_h - from_h);
      return static_cast<graph::Weight>(1 + std::lround(climb * uphill * 20.0));
    };
    g.set(a, b, cost(height[a], height[b]));
    g.set(b, a, cost(height[b], height[a]));
  };
  for (std::size_t r = 0; r < size; ++r) {
    for (std::size_t c = 0; c < size; ++c) {
      if (c + 1 < size) connect(id(r, c), id(r, c + 1));
      if (r + 1 < size) connect(id(r, c), id(r + 1, c));
    }
  }

  std::printf("Terrain %zux%zu (%zu cells), goal at linear id %zu\n\n", size, size, g.size(),
              goal);

  const mcp::Result result = mcp::solve(g, goal);
  const bool start_reaches_goal = result.solution.cost[start] != g.infinity();
  const auto route =
      start_reaches_goal ? graph::extract_path(result.solution, start) : std::nullopt;

  // Render: heights as shades, route as '*', start 'S', goal 'G'.
  std::vector<bool> on_route(size * size, false);
  if (route) {
    for (const auto cell : *route) on_route[cell] = true;
  }
  static const char kShades[] = " .:-=+*#%@";
  std::printf("Terrain (darker = higher), route from S to G marked 'o':\n\n");
  for (std::size_t r = 0; r < size; ++r) {
    std::string line = "  ";
    for (std::size_t c = 0; c < size; ++c) {
      const std::size_t cell = id(r, c);
      char glyph = kShades[static_cast<std::size_t>(height[cell] * 9.999)];
      if (on_route[cell]) glyph = 'o';
      if (cell == start) glyph = 'S';
      if (cell == goal) glyph = 'G';
      line += glyph;
      line += ' ';
    }
    std::printf("%s\n", line.c_str());
  }

  if (route) {
    std::printf("\nRoute length: %zu steps, total effort: %u\n", route->size() - 1,
                result.solution.cost[start]);
  } else {
    std::printf("\nStart cannot reach the goal.\n");
  }
  std::printf("PPA solved all %zu sources at once: %zu iterations, %s\n", g.size(),
              result.iterations, result.total_steps.summary().c_str());

  const auto reference = baseline::dijkstra_to(g, goal);
  const auto verdict = graph::verify_solution(g, result.solution, reference.cost);
  std::printf("Verification against Dijkstra: %s\n", verdict.ok ? "OK" : verdict.detail.c_str());
  return verdict.ok ? 0 : 1;
}
