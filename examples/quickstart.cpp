// Quickstart: build a small weighted digraph, run the PPA Minimum Cost
// Path algorithm on the simulator, and inspect costs, next-hop pointers,
// reconstructed paths and the SIMD step bill.
//
//   ./quickstart [--n 10] [--density 0.3] [--seed 1] [--dest 0] [--bits 16]
#include <cstdio>
#include <iostream>

#include "baseline/sequential.hpp"
#include "graph/generators.hpp"
#include "graph/path.hpp"
#include "graph/properties.hpp"
#include "mcp/mcp.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ppa;

int main(int argc, char** argv) {
  util::CliParser cli("PPA MCP quickstart — solve one random instance and show everything");
  cli.flag("n", "number of vertices (= PPA array side)", "10");
  cli.flag("density", "edge probability", "0.3");
  cli.flag("seed", "RNG seed", "1");
  cli.flag("dest", "destination vertex", "0");
  cli.flag("bits", "word width h", "16");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const auto d = static_cast<graph::Vertex>(cli.get_int("dest"));
  const auto bits = static_cast<int>(cli.get_int("bits"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  // 1. A random instance where every vertex can reach the destination.
  const auto g = graph::random_reachable_digraph(n, bits, cli.get_double("density"),
                                                 {1, 20}, d, rng);
  std::printf("Graph: %zu vertices, %zu edges, h = %d bits, destination = %zu\n", g.size(),
              g.edge_count(), bits, d);
  std::printf("Max MCP length p = %zu\n\n", graph::max_mcp_edges(g, d));

  // 2. Run the paper's algorithm on a fresh PPA machine.
  mcp::Options options;
  options.record_iterations = true;
  const mcp::Result result = mcp::solve(g, d, options);

  // 3. Report the solution.
  util::Table table("minimum cost paths to vertex " + std::to_string(d),
                    {"source", "cost", "next hop", "path"});
  for (graph::Vertex i = 0; i < n; ++i) {
    std::string path_text = "(unreachable)";
    const bool reachable = result.solution.cost[i] != g.infinity();
    if (const auto path =
            reachable ? graph::extract_path(result.solution, i) : std::nullopt) {
      path_text.clear();
      for (std::size_t k = 0; k < path->size(); ++k) {
        if (k != 0) path_text += " -> ";
        path_text += std::to_string((*path)[k]);
      }
    }
    table.add_row({static_cast<std::int64_t>(i),
                   result.solution.cost[i] == g.infinity()
                       ? util::Cell{std::string{"inf"}}
                       : util::Cell{static_cast<std::int64_t>(result.solution.cost[i])},
                   static_cast<std::int64_t>(result.solution.next[i]), path_text});
  }
  table.print(std::cout);

  // 4. The SIMD bill and the convergence trace.
  std::printf("Converged in %zu iterations; %s\n", result.iterations,
              result.total_steps.summary().c_str());
  for (std::size_t k = 0; k < result.iteration_trace.size(); ++k) {
    std::printf("  iteration %zu: %zu vertices improved, %llu steps\n", k + 1,
                result.iteration_trace[k].changed,
                static_cast<unsigned long long>(result.iteration_trace[k].steps.total()));
  }

  // 5. Cross-check against Dijkstra, as the test suite does.
  const auto reference = baseline::dijkstra_to(g, d);
  const auto verdict = graph::verify_solution(g, result.solution, reference.cost);
  std::printf("\nVerification against Dijkstra: %s\n",
              verdict.ok ? "OK — exact match, all paths consistent" : verdict.detail.c_str());
  return verdict.ok ? 0 : 1;
}
