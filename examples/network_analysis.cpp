// Network analysis — the extension algorithms in one report: given a
// (generated or loaded) digraph, compute on the PPA
//
//   * the transitive closure (boolean DP, 1 bus-OR cycle per iteration),
//   * per-destination reachability counts and in-eccentricities,
//   * the graph diameter via the all-pairs driver,
//
// and print a connectivity report. Everything runs on the simulated
// machine; host code only formats.
//
//   ./network_analysis [--n 10] [--density 0.25] [--seed 11] [--graph file]
#include <cstdio>
#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mcp/allpairs.hpp"
#include "mcp/closure.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ppa;

int main(int argc, char** argv) {
  util::CliParser cli("Connectivity / distance report computed on the PPA");
  cli.flag("n", "vertex count (when generating)", "10");
  cli.flag("density", "edge probability (when generating)", "0.25");
  cli.flag("seed", "RNG seed", "11");
  cli.flag("graph", "load this graph file instead of generating", "");
  if (!cli.parse(argc, argv)) return 1;

  const graph::WeightMatrix g = [&]() -> graph::WeightMatrix {
    const std::string path = cli.get_string("graph");
    if (!path.empty()) return graph::load_graph(path);
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    return graph::random_digraph(static_cast<std::size_t>(cli.get_int("n")), 16,
                                 cli.get_double("density"), {1, 20}, rng);
  }();
  const std::size_t n = g.size();
  std::printf("Analyzing %zu vertices, %zu edges (h = %d)\n\n", n, g.edge_count(),
              g.field().bits());

  // Transitive closure — one boolean DP per destination column.
  const auto closure = mcp::transitive_closure(g);
  std::printf("Transitive closure (%zu iterations total, %s):\n\n", closure.total_iterations,
              closure.total_steps.summary().c_str());
  for (graph::Vertex i = 0; i < n; ++i) {
    std::string line = "  ";
    for (graph::Vertex j = 0; j < n; ++j) line += closure.at(i, j) ? '1' : '.';
    std::printf("%s\n", line.c_str());
  }

  // Per-destination report: reachable sources and in-eccentricity.
  util::Table table("per-destination connectivity",
                    {"destination", "sources reaching it", "in-eccentricity"});
  for (graph::Vertex d = 0; d < n; ++d) {
    std::size_t sources = 0;
    for (graph::Vertex i = 0; i < n; ++i) sources += closure.at(i, d);
    const auto ecc = mcp::solve_eccentricity(g, d);
    table.add_row({static_cast<std::int64_t>(d), static_cast<std::int64_t>(sources),
                   static_cast<std::int64_t>(ecc.eccentricity)});
  }
  std::printf("\n");
  table.print(std::cout);

  // Diameter over all ordered pairs.
  const auto ap = mcp::all_pairs(g);
  std::printf("Diameter (largest finite minimum cost over ordered pairs): %u\n", ap.diameter);
  std::printf("All-pairs bill: %zu iterations, %s\n", ap.total_iterations,
              ap.total_steps.summary().c_str());
  return 0;
}
