// Grid router — the classic MCP application the dynamic-programming
// formulation comes from (Lee-style maze routing / road networks):
// route every cell of a weighted grid to a depot cell, then draw the
// next-hop field as ASCII arrows.
//
// Each grid cell is a graph vertex; 4-neighbour moves have random
// per-direction costs (think congestion); blocked cells have no edges.
//
//   ./grid_router [--rows 7] [--cols 9] [--seed 3] [--depot-r 3]
//                 [--depot-c 4] [--blocked 0.12]
#include <cstdio>
#include <iostream>
#include <string>

#include "baseline/sequential.hpp"
#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"
#include "mcp/mcp.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace ppa;

namespace {

struct Grid {
  std::size_t rows;
  std::size_t cols;
  std::vector<bool> blocked;

  [[nodiscard]] std::size_t id(std::size_t r, std::size_t c) const { return r * cols + c; }
};

/// Builds the routing graph: edges between open 4-neighbours, with
/// independent random costs per direction.
graph::WeightMatrix build_graph(const Grid& grid, util::Rng& rng) {
  graph::WeightMatrix g(grid.rows * grid.cols, 16);
  const auto connect = [&](std::size_t a, std::size_t b) {
    if (grid.blocked[a] || grid.blocked[b]) return;
    g.set(a, b, static_cast<graph::Weight>(1 + rng.below(9)));
    g.set(b, a, static_cast<graph::Weight>(1 + rng.below(9)));
  };
  for (std::size_t r = 0; r < grid.rows; ++r) {
    for (std::size_t c = 0; c < grid.cols; ++c) {
      if (c + 1 < grid.cols) connect(grid.id(r, c), grid.id(r, c + 1));
      if (r + 1 < grid.rows) connect(grid.id(r, c), grid.id(r + 1, c));
    }
  }
  return g;
}

/// Arrow pointing from cell `from` toward neighbouring cell `to`.
char arrow(const Grid& grid, std::size_t from, std::size_t to) {
  if (to == from + 1) return '>';
  if (from == to + 1) return '<';
  if (to == from + grid.cols) return 'v';
  if (from == to + grid.cols) return '^';
  return '?';
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Route every cell of a weighted grid to a depot on the PPA");
  cli.flag("rows", "grid rows", "7");
  cli.flag("cols", "grid columns", "9");
  cli.flag("seed", "RNG seed", "3");
  cli.flag("depot-r", "depot row", "3");
  cli.flag("depot-c", "depot column", "4");
  cli.flag("blocked", "probability a cell is blocked", "0.12");
  if (!cli.parse(argc, argv)) return 1;

  Grid grid{static_cast<std::size_t>(cli.get_int("rows")),
            static_cast<std::size_t>(cli.get_int("cols")),
            {}};
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::size_t depot =
      grid.id(static_cast<std::size_t>(cli.get_int("depot-r")),
              static_cast<std::size_t>(cli.get_int("depot-c")));

  grid.blocked.assign(grid.rows * grid.cols, false);
  const double p_blocked = cli.get_double("blocked");
  for (std::size_t cell = 0; cell < grid.blocked.size(); ++cell) {
    grid.blocked[cell] = (cell != depot) && rng.chance(p_blocked);
  }

  const auto g = build_graph(grid, rng);
  std::printf("Routing a %zux%zu grid (%zu vertices => a %zux%zu PE array) to depot (%ld,%ld)\n\n",
              grid.rows, grid.cols, g.size(), g.size(), g.size(),
              static_cast<long>(cli.get_int("depot-r")),
              static_cast<long>(cli.get_int("depot-c")));

  const mcp::Result result = mcp::solve(g, depot);

  // Draw the next-hop field.
  std::printf("Next-hop field ('D' depot, '#' blocked, '.' unreachable):\n\n");
  for (std::size_t r = 0; r < grid.rows; ++r) {
    std::string line = "  ";
    for (std::size_t c = 0; c < grid.cols; ++c) {
      const std::size_t cell = grid.id(r, c);
      char glyph = '.';
      if (cell == depot) {
        glyph = 'D';
      } else if (grid.blocked[cell]) {
        glyph = '#';
      } else if (result.solution.cost[cell] != g.infinity()) {
        glyph = arrow(grid, cell, result.solution.next[cell]);
      }
      line += glyph;
      line += ' ';
    }
    std::printf("%s\n", line.c_str());
  }

  // Cost field.
  std::printf("\nCost-to-depot field:\n\n");
  for (std::size_t r = 0; r < grid.rows; ++r) {
    std::string line = "  ";
    for (std::size_t c = 0; c < grid.cols; ++c) {
      const std::size_t cell = grid.id(r, c);
      char buffer[8];
      if (grid.blocked[cell]) {
        std::snprintf(buffer, sizeof buffer, "  ##");
      } else if (result.solution.cost[cell] == g.infinity()) {
        std::snprintf(buffer, sizeof buffer, "   .");
      } else {
        std::snprintf(buffer, sizeof buffer, "%4u", result.solution.cost[cell]);
      }
      line += buffer;
    }
    std::printf("%s\n", line.c_str());
  }

  std::printf("\nSolved in %zu iterations, %s\n", result.iterations,
              result.total_steps.summary().c_str());

  const auto reference = baseline::dijkstra_to(g, depot);
  const auto verdict = graph::verify_solution(g, result.solution, reference.cost);
  std::printf("Verification against Dijkstra: %s\n", verdict.ok ? "OK" : verdict.detail.c_str());
  return verdict.ok ? 0 : 1;
}
