// City-block distance transform on the PPA — the EDT-family application
// the paper itself mentions ("Primitives belonging to this set and used to
// implement the EDT algorithm", Section 2).
//
// A binary image is turned into the graph of its pixel grid (unit-cost
// 4-neighbour moves) plus one virtual super-sink that every FEATURE pixel
// reaches with a 0-cost edge. One single-destination MCP run toward the
// sink then yields, for every pixel simultaneously, its L1 (city-block)
// distance to the nearest feature — the distance transform. Verified
// against a host BFS.
//
//   ./distance_transform [--size 9] [--seed 13] [--features 5]
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "graph/path.hpp"
#include "graph/weight_matrix.hpp"
#include "mcp/mcp.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace ppa;

namespace {

/// Host reference: multi-source BFS (unit weights -> BFS layers = L1 DT).
std::vector<unsigned> host_distance_transform(std::size_t size,
                                              const std::vector<bool>& feature) {
  constexpr unsigned kUnreached = ~0u;
  std::vector<unsigned> dist(size * size, kUnreached);
  std::deque<std::size_t> frontier;
  for (std::size_t p = 0; p < feature.size(); ++p) {
    if (feature[p]) {
      dist[p] = 0;
      frontier.push_back(p);
    }
  }
  while (!frontier.empty()) {
    const std::size_t p = frontier.front();
    frontier.pop_front();
    const std::size_t r = p / size;
    const std::size_t c = p % size;
    const auto visit = [&](std::size_t q) {
      if (dist[q] == kUnreached) {
        dist[q] = dist[p] + 1;
        frontier.push_back(q);
      }
    };
    if (r > 0) visit(p - size);
    if (r + 1 < size) visit(p + size);
    if (c > 0) visit(p - 1);
    if (c + 1 < size) visit(p + 1);
  }
  return dist;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("L1 distance transform of a binary image via one PPA MCP run");
  cli.flag("size", "image side in pixels", "9");
  cli.flag("seed", "RNG seed", "13");
  cli.flag("features", "number of feature pixels", "5");
  if (!cli.parse(argc, argv)) return 1;

  const auto size = static_cast<std::size_t>(cli.get_int("size"));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::vector<bool> feature(size * size, false);
  const auto feature_count =
      std::min<std::size_t>(static_cast<std::size_t>(cli.get_int("features")), size * size);
  for (const std::size_t p :
       util::sample_without_replacement(rng, size * size, feature_count)) {
    feature[p] = true;
  }

  // Pixel grid + super-sink (vertex n-1). Feature pixels reach the sink
  // for free; every move between 4-neighbours costs 1.
  const std::size_t n = size * size + 1;
  const graph::Vertex sink = n - 1;
  graph::WeightMatrix g(n, 16);
  const auto id = [size](std::size_t r, std::size_t c) { return r * size + c; };
  for (std::size_t r = 0; r < size; ++r) {
    for (std::size_t c = 0; c < size; ++c) {
      const std::size_t p = id(r, c);
      if (c + 1 < size) {
        g.set(p, id(r, c + 1), 1);
        g.set(id(r, c + 1), p, 1);
      }
      if (r + 1 < size) {
        g.set(p, id(r + 1, c), 1);
        g.set(id(r + 1, c), p, 1);
      }
      if (feature[p]) g.set(p, sink, 0);
    }
  }

  std::printf("%zux%zu image, %zu feature pixels -> %zu-vertex graph on a %zux%zu PPA\n\n",
              size, size, feature_count, n, n, n);

  const mcp::Result result = mcp::solve(g, sink);

  // Render the transform; features are '#'.
  std::printf("City-block distance to the nearest feature:\n\n");
  for (std::size_t r = 0; r < size; ++r) {
    std::string line = "  ";
    for (std::size_t c = 0; c < size; ++c) {
      char buffer[8];
      if (feature[id(r, c)]) {
        std::snprintf(buffer, sizeof buffer, "  #");
      } else {
        std::snprintf(buffer, sizeof buffer, "%3u", result.solution.cost[id(r, c)]);
      }
      line += buffer;
    }
    std::printf("%s\n", line.c_str());
  }

  // Verify against the host BFS.
  const auto reference = host_distance_transform(size, feature);
  std::size_t mismatches = 0;
  for (std::size_t p = 0; p < size * size; ++p) {
    const unsigned machine_distance = result.solution.cost[p];
    if (feature_count == 0) {
      if (machine_distance != g.infinity()) ++mismatches;
    } else if (machine_distance != reference[p]) {
      ++mismatches;
    }
  }
  std::printf("\nSolved in %zu iterations, %s\n", result.iterations,
              result.total_steps.summary().c_str());
  std::printf("Host BFS cross-check: %zu mismatches%s\n", mismatches,
              mismatches == 0 ? " — exact" : " (!!)");
  return mismatches == 0 ? 0 : 1;
}
